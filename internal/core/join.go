package core

import (
	"fmt"
	"sort"

	"secyan/internal/gc"
	"secyan/internal/jointree"
	"secyan/internal/mpc"
	"secyan/internal/oep"
	"secyan/internal/relation"
	"secyan/internal/transport"
	"secyan/internal/yannakakis"
)

// This file implements the oblivious join of paper §6.3, the final
// operator of the secure Yannakakis protocol. Preconditions (established
// by the reduce and semijoin phases): all remaining relations carry only
// output attributes and every dangling tuple is zero-annotated. The
// protocol then:
//
//  1. reveals to Alice, per relation, each tuple or a dummy marker
//     depending on a zero test of its shared annotation — legitimate
//     because R*_F = π_F(J*) is derivable from the query results;
//  2. lets Alice join the revealed relations locally with the plaintext
//     Yannakakis engine, tracking provenance, and sends |J*| to Bob;
//  3. re-aligns each relation's annotation shares to the join rows with
//     an OEP programmed by Alice, and multiplies the factors per row in
//     one garbled circuit, yielding shared result annotations.

// dummyMarker is the revealed value of a suppressed column: all ones,
// which no real value (< 2^61) or padding dummy (< 2^62) can equal.
const dummyMarker = ^uint64(0)

// attrBits is the width of revealed attribute values.
const attrBits = 64

// buildRevealCircuit builds the §6.3 step-1 circuit for n tuples with
// `cols` columns each. Per tuple: the evaluator (Alice) inputs her
// annotation share; the garbler's share enters as private bits; if
// withRows is true the garbler's column values follow as private bits and
// the circuit reveals (zero ? dummyMarker : value) per column; otherwise
// only the zero bit is revealed (Alice already holds the rows).
func buildRevealCircuit(n, cols, ell int, withRows bool) *gc.Circuit {
	b := gc.NewBuilder()
	for i := 0; i < n; i++ {
		ve := b.EvalInputWord(ell)
		vg := b.PrivateWord(ell)
		z := b.IsZero(b.AddPrivate(ve, vg))
		if !withRows {
			b.OutputToEval(z)
			continue
		}
		nz := b.Not(z)
		for c := 0; c < cols; c++ {
			val := b.PrivateWord(attrBits)
			out := make(gc.Word, attrBits)
			for k := 0; k < attrBits; k++ {
				out[k] = b.XOR(b.ANDG(nz, val[k]), z)
			}
			b.OutputWordToEval(out)
		}
	}
	return b.Build()
}

// revealNonzeroRows reveals the nonzero-annotated tuples of s to Alice.
// On Alice's side it returns a relation with s.N rows whose annotation
// field is 1 for revealed (real, nonzero) tuples and 0 otherwise; Bob
// receives nil. Message sizes depend only on public parameters. Bit and
// row assembly stride in chunks; the single circuit (or single direct
// message) is the wire contract and stays whole.
func revealNonzeroRows(p *mpc.Party, s *SharedRelation, chunk int) (*relation.Relation, error) {
	n := s.N
	cols := len(s.Schema.Attrs)
	ell := p.Ring.Bits
	withRows := s.Holder == mpc.Bob
	if n == 0 {
		if p.Role == mpc.Alice {
			return relation.New(s.Schema), nil
		}
		return nil, nil
	}
	if s.Plain {
		// §6.5: the holder knows the zero pattern, so no circuit is
		// needed — Alice filters locally, or Bob sends rows-or-dummies
		// directly (revealing exactly R*, which the model permits).
		return revealPlainRows(p, s, chunk)
	}
	circ := buildRevealCircuit(n, cols, ell, withRows)

	if p.Role == mpc.Alice {
		evalBits := appendShareBits(nil, s.Annot, ell)
		out, err := p.RunCircuit(circ, evalBits, nil, mpc.Bob)
		if err != nil {
			return nil, err
		}
		res := relation.New(s.Schema)
		relation.Range(n, chunk, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				if !withRows {
					zero := out[i]
					row := append([]uint64(nil), s.Rel.Tuples[i]...)
					flag := uint64(1)
					if zero || s.Rel.IsDummy(i) {
						flag = 0
					}
					res.Append(row, flag)
					continue
				}
				row := make([]uint64, cols)
				flag := uint64(1)
				for c := 0; c < cols; c++ {
					off := (i*cols + c) * attrBits
					row[c] = gc.UintOfBits(out[off : off+attrBits])
					if row[c] == dummyMarker || relation.IsDummyValue(row[c]) {
						flag = 0
					}
				}
				res.Append(row, flag)
			}
			return nil
		})
		return res, nil
	}

	// Bob's side: garbler with private shares (and rows when he holds
	// them).
	priv := make([]bool, 0, n*(ell+cols*attrBits))
	relation.Range(n, chunk, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			priv = gc.AppendBits(priv, s.Annot[i], ell)
			if withRows {
				for c := 0; c < cols; c++ {
					priv = gc.AppendBits(priv, s.Rel.Tuples[i][c], attrBits)
				}
			}
		}
		return nil
	})
	if _, err := p.RunCircuit(circ, nil, priv, mpc.Bob); err != nil {
		return nil, err
	}
	return nil, nil
}

// revealPlainRows is the plaintext-annotation fast path of the reveal
// step: no garbled circuit, at most one direct message.
func revealPlainRows(p *mpc.Party, s *SharedRelation, chunk int) (*relation.Relation, error) {
	cols := len(s.Schema.Attrs)
	if s.Holder == mpc.Alice {
		if p.Role != mpc.Alice {
			return nil, nil // nothing to do: Alice filters locally
		}
		res := relation.New(s.Schema)
		relation.Range(s.N, chunk, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				flag := uint64(1)
				if s.Annot[i] == 0 || s.Rel.IsDummy(i) {
					flag = 0
				}
				res.Append(append([]uint64(nil), s.Rel.Tuples[i]...), flag)
			}
			return nil
		})
		return res, nil
	}
	// Bob holds the rows: he sends each real nonzero row, or dummy
	// markers, in one message of public size. Chunking assembles the
	// message in windows but never splits it — one message either way.
	if p.Role == mpc.Bob {
		msg := make([]uint64, 0, s.N*cols)
		relation.Range(s.N, chunk, func(lo, hi int) error {
			for i := lo; i < hi; i++ {
				for c := 0; c < cols; c++ {
					v := s.Rel.Tuples[i][c]
					if s.Annot[i] == 0 || s.Rel.IsDummy(i) {
						v = dummyMarker
					}
					msg = append(msg, v)
				}
			}
			return nil
		})
		return nil, transport.SendUint64s(p.Conn, msg)
	}
	vals, err := transport.RecvUint64s(p.Conn)
	if err != nil {
		return nil, err
	}
	if len(vals) != s.N*cols {
		return nil, fmt.Errorf("core: plain reveal got %d values, want %d", len(vals), s.N*cols)
	}
	res := relation.New(s.Schema)
	relation.Range(s.N, chunk, func(lo, hi int) error {
		for i := lo; i < hi; i++ {
			row := make([]uint64, cols)
			flag := uint64(1)
			for c := 0; c < cols; c++ {
				row[c] = vals[i*cols+c]
				if row[c] == dummyMarker || relation.IsDummyValue(row[c]) {
					flag = 0
				}
			}
			res.Append(row, flag)
		}
		return nil
	})
	return res, nil
}

// buildProductCircuit multiplies k shared factors per row over n rows.
// Private-bit order: per row, per factor, the garbler's share; after all
// rows, the n negated masks.
func buildProductCircuit(n, k, ell int) *gc.Circuit {
	b := gc.NewBuilder()
	prods := make([]gc.Word, n)
	for i := 0; i < n; i++ {
		var acc gc.Word
		for f := 0; f < k; f++ {
			ve := b.EvalInputWord(ell)
			vg := b.PrivateWord(ell)
			v := b.AddPrivate(ve, vg)
			if f == 0 {
				acc = v
			} else {
				acc = b.Mul(acc, v)
			}
		}
		prods[i] = acc
	}
	for i := 0; i < n; i++ {
		mask := b.PrivateWord(ell)
		b.OutputWordToEval(b.AddPrivate(prods[i], mask))
	}
	return b.Build()
}

// JoinResult is one party's view of the oblivious join output: Alice has
// the join rows (already filtered to real tuples) and both parties hold
// shares of each row's annotation.
type JoinResult struct {
	N      int
	Schema relation.Schema
	Rows   *relation.Relation // Alice only
	Annot  []uint64
}

// ObliviousJoin executes §6.3 over the surviving tree nodes. srs is
// indexed by tree node; nodes lists the participating node indices.
func ObliviousJoin(p *mpc.Party, tree *jointree.Tree, srs []*SharedRelation, nodes []int) (*JoinResult, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("core: oblivious join over no relations")
	}
	order := append([]int(nil), nodes...)
	sort.Ints(order)

	// Step 1: reveal nonzero tuples of every participating relation.
	revealed := make(map[int]*relation.Relation, len(order))
	for _, node := range order {
		r, err := revealNonzeroRows(p, srs[node], 0)
		if err != nil {
			return nil, fmt.Errorf("core: reveal node %d: %w", node, err)
		}
		revealed[node] = r
	}

	// Step 2: Alice joins locally with provenance and shares OUT.
	var out int
	var prov *yannakakis.Provenance
	if p.Role == mpc.Alice {
		rels := make([]*relation.Relation, len(srs))
		for i, s := range srs {
			if r, ok := revealed[i]; ok {
				rels[i] = r
			} else {
				rels[i] = relation.New(s.Schema)
			}
		}
		var err error
		prov, err = yannakakis.JoinProvenance(tree, rels, order)
		if err != nil {
			return nil, err
		}
		out = prov.Result.Len()
		if err := sendPublicSize(p.Conn, out); err != nil {
			return nil, err
		}
	} else {
		var err error
		out, err = recvPublicSize(p.Conn)
		if err != nil {
			return nil, err
		}
	}

	// Union schema in join order (r's attrs, then new attrs per node).
	schema := unionSchema(srs, order)
	if out == 0 {
		res := &JoinResult{N: 0, Schema: schema}
		if p.Role == mpc.Alice {
			res.Rows = relation.New(schema)
		}
		return res, nil
	}

	// Step 3: align annotation shares per relation via OEP, then multiply.
	factors := make([][]uint64, len(order))
	for fi, node := range order {
		if p.Role == mpc.Alice {
			xi := make([]int, out)
			for row := 0; row < out; row++ {
				src := prov.Sources[row][node]
				if src < 0 {
					return nil, fmt.Errorf("core: missing provenance for node %d", node)
				}
				xi[row] = src
			}
			f, err := oep.RunProgrammer(p, xi, srs[node].N, srs[node].Annot)
			if err != nil {
				return nil, err
			}
			factors[fi] = f
		} else {
			f, err := oep.RunHelper(p, srs[node].N, out, srs[node].Annot)
			if err != nil {
				return nil, err
			}
			factors[fi] = f
		}
	}

	ell := p.Ring.Bits
	circ := buildProductCircuit(out, len(order), ell)
	annot := make([]uint64, out)
	if p.Role == mpc.Alice {
		evalBits := make([]bool, 0, out*len(order)*ell)
		for row := 0; row < out; row++ {
			for fi := range order {
				evalBits = gc.AppendBits(evalBits, factors[fi][row], ell)
			}
		}
		bits, err := p.RunCircuit(circ, evalBits, nil, mpc.Bob)
		if err != nil {
			return nil, err
		}
		for row := 0; row < out; row++ {
			annot[row] = p.Ring.Mask(gc.UintOfBits(bits[row*ell : (row+1)*ell]))
		}
	} else {
		priv := make([]bool, 0, out*(len(order)+1)*ell)
		for row := 0; row < out; row++ {
			for fi := range order {
				priv = gc.AppendBits(priv, factors[fi][row], ell)
			}
		}
		for row := 0; row < out; row++ {
			r := p.Ring.Random(p.PRG)
			annot[row] = r
			priv = gc.AppendBits(priv, p.Ring.Neg(r), ell)
		}
		if _, err := p.RunCircuit(circ, nil, priv, mpc.Bob); err != nil {
			return nil, err
		}
	}

	res := &JoinResult{N: out, Schema: schema, Annot: annot}
	if p.Role == mpc.Alice {
		// Reorder the provenance result columns to the union schema.
		rows := relation.New(schema)
		cols, err := prov.Result.Schema.Positions(schema.Attrs)
		if err != nil {
			return nil, err
		}
		for i := range prov.Result.Tuples {
			row := make([]uint64, len(cols))
			for c, cc := range cols {
				row[c] = prov.Result.Tuples[i][cc]
			}
			rows.Append(row, 0)
		}
		res.Rows = rows
	}
	return res, nil
}

// unionSchema concatenates the node schemas, deduplicating attributes in
// first-appearance order.
func unionSchema(srs []*SharedRelation, order []int) relation.Schema {
	var attrs []relation.Attr
	seen := map[relation.Attr]bool{}
	for _, node := range order {
		for _, a := range srs[node].Schema.Attrs {
			if !seen[a] {
				seen[a] = true
				attrs = append(attrs, a)
			}
		}
	}
	return relation.MustSchema(attrs...)
}

// RevealRelation reveals a shared relation's real content to Alice: the
// rows (via the zero-test circuit) and the annotations (via share
// exchange). Used as the last step of a query whose reduce phase leaves a
// single node (e.g. TPC-H Q3, §8.1), where the relation *is* the query
// result. Alice receives the filtered relation; Bob receives nil.
func RevealRelation(p *mpc.Party, s *SharedRelation) (*relation.Relation, error) {
	return revealRelationChunked(p, s, 0)
}

// revealRelationChunked is RevealRelation with an explicit tuple-plane
// chunk size (0 = process default, negative = unbounded).
func revealRelationChunked(p *mpc.Party, s *SharedRelation, chunk int) (*relation.Relation, error) {
	revealed, err := revealNonzeroRows(p, s, chunk)
	if err != nil {
		return nil, err
	}
	vals, err := RevealAnnotations(p, s, mpc.Alice)
	if err != nil {
		return nil, err
	}
	if p.Role != mpc.Alice {
		return nil, nil
	}
	out := relation.New(s.Schema)
	for i := range revealed.Tuples {
		if revealed.Annot[i] == 1 && vals[i] != 0 {
			out.Append(revealed.Tuples[i], vals[i])
		}
	}
	return out, nil
}
