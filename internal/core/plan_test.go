package core

import (
	"context"
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"secyan/internal/mpc"
	"secyan/internal/relation"
)

// splitQuery attaches each input relation on its owner's side only.
func splitQuery(q *Query, rels []*relation.Relation, role mpc.Role) *Query {
	cq := &Query{Output: q.Output, NoLocalOptimizations: q.NoLocalOptimizations}
	for i, in := range q.Inputs {
		ci := in
		if in.Owner == role {
			ci.Rel = rels[i]
		} else {
			ci.Rel = nil
		}
		cq.Inputs = append(cq.Inputs, ci)
	}
	return cq
}

// runTraced executes q on a fresh party pair under ctx and returns
// Alice's result and trace plus both parties' errors.
func runTraced(ctx context.Context, q *Query, rels []*relation.Relation) (rel *relation.Relation, tr *Trace, aliceErr, bobErr error) {
	alice, bob := mpc.Pair(testRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	done := make(chan error, 1)
	go func() {
		_, _, err := RunContext(ctx, bob, splitQuery(q, rels, mpc.Bob))
		if err != nil {
			bob.Conn.Close()
		}
		done <- err
	}()
	rel, tr, aliceErr = RunContext(ctx, alice, splitQuery(q, rels, mpc.Alice))
	if aliceErr != nil {
		alice.Conn.Close()
	}
	bobErr = <-done
	return rel, tr, aliceErr, bobErr
}

// multiNodeQuery is a three-way chain join whose attributes are all
// outputs, so the semijoin and full-join phases run.
func multiNodeQuery(rng *rand.Rand) (*Query, []*relation.Relation) {
	r1 := relation.New(relation.MustSchema("g1", "k"))
	r2 := relation.New(relation.MustSchema("k", "m"))
	r3 := relation.New(relation.MustSchema("m", "g2"))
	for i := 0; i < 10; i++ {
		r1.Append([]uint64{uint64(rng.Intn(3)), uint64(rng.Intn(5))}, uint64(rng.Intn(20)))
		r2.Append([]uint64{uint64(rng.Intn(5)), uint64(rng.Intn(5))}, uint64(rng.Intn(20)))
		r3.Append([]uint64{uint64(rng.Intn(5)), uint64(rng.Intn(3))}, uint64(rng.Intn(20)))
	}
	q := &Query{
		Inputs: []Input{
			{Name: "R1", Owner: mpc.Alice, Schema: r1.Schema, N: r1.Len()},
			{Name: "R2", Owner: mpc.Bob, Schema: r2.Schema, N: r2.Len()},
			{Name: "R3", Owner: mpc.Bob, Schema: r3.Schema, N: r3.Len()},
		},
		Output: []relation.Attr{"g1", "k", "m", "g2"},
	}
	return q, []*relation.Relation{r1, r2, r3}
}

// TestTraceMatchesPlan asserts the central plan-IR contract: the trace
// of an execution is, step for step, the plan Explain renders — same
// phases, operators and nodes in the same order — and each step's
// measured traffic matches its Estimate byte-exactly once the plan is
// compiled with the true output size.
func TestTraceMatchesPlan(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	single, singleRels := example11Query(rng, 12, 18)
	multi, multiRels := multiNodeQuery(rng)
	raw, rawRels := example11Query(rng, 9, 14)
	raw.NoLocalOptimizations = true

	for _, tc := range []struct {
		name string
		q    *Query
		rels []*relation.Relation
	}{
		{"single-survivor", single, singleRels},
		{"multi-node", multi, multiRels},
		{"no-local-opt", raw, rawRels},
	} {
		t.Run(tc.name, func(t *testing.T) {
			_, tr, aerr, berr := runTraced(context.Background(), tc.q, tc.rels)
			if aerr != nil || berr != nil {
				t.Fatalf("run: alice %v, bob %v", aerr, berr)
			}
			// Recover the true output size from the executed local join, if
			// any, and re-Explain with it.
			out := 0
			for _, s := range tr.Steps {
				if s.Op == "local-join" {
					out = s.N
				}
			}
			plan, err := Explain(tc.q, testRing.Bits, out)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Steps) != len(tr.Steps) {
				t.Fatalf("plan has %d steps, trace has %d", len(plan.Steps), len(tr.Steps))
			}
			for i, ps := range plan.Steps {
				ts := tr.Steps[i]
				if ps.Phase != ts.Phase || ps.Op != ts.Op || ps.Node != ts.Node || ps.N != ts.N {
					t.Fatalf("step %d: plan %s/%s[%s] N=%d, trace %s/%s[%s] N=%d",
						i, ps.Phase, ps.Op, ps.Node, ps.N, ts.Phase, ts.Op, ts.Node, ts.N)
				}
				if ts.Bytes != ps.Estimate() {
					t.Errorf("step %d (%s/%s[%s]): measured %d bytes, estimate %d",
						i, ps.Phase, ps.Op, ps.Node, ts.Bytes, ps.Estimate())
				}
			}
			if tr.TotalBytes() != plan.EstBytes {
				t.Errorf("total: measured %d, estimated %d", tr.TotalBytes(), plan.EstBytes)
			}
		})
	}
}

// TestRunMatchesExplainWithoutEstOut asserts the step *sequence* is
// independent of the estOut assumption, so Run's estOut=0 compilation
// matches any Explain of the same query.
func TestRunMatchesExplainWithoutEstOut(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	q, _ := multiNodeQuery(rng)
	p0, err := Explain(q, testRing.Bits, 0)
	if err != nil {
		t.Fatal(err)
	}
	p9, err := Explain(q, testRing.Bits, 9)
	if err != nil {
		t.Fatal(err)
	}
	if len(p0.Steps) != len(p9.Steps) {
		t.Fatalf("step sequence depends on estOut: %d vs %d steps", len(p0.Steps), len(p9.Steps))
	}
	for i := range p0.Steps {
		a, b := p0.Steps[i], p9.Steps[i]
		if a.Phase != b.Phase || a.Op != b.Op || a.Node != b.Node {
			t.Fatalf("step %d differs: %s/%s[%s] vs %s/%s[%s]", i, a.Phase, a.Op, a.Node, b.Phase, b.Op, b.Node)
		}
	}
}

// TestCancellationMidProtocol cancels the shared context once Alice
// finishes her first reduce step; both parties must return promptly with
// an error labeled by the step that was interrupted and attributable to
// the cancellation.
func TestCancellationMidProtocol(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	q, rels := example11Query(rng, 12, 18)
	q.NoLocalOptimizations = true // force circuit traffic so Bob blocks mid-step

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	alice, bob := mpc.Pair(testRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	alice.Observer = func(s TraceStep) {
		if s.Phase == "reduce" {
			cancel()
		}
	}

	type res struct {
		who string
		err error
	}
	ch := make(chan res, 2)
	go func() {
		_, _, err := RunContext(ctx, alice, splitQuery(q, rels, mpc.Alice))
		ch <- res{"alice", err}
	}()
	go func() {
		_, _, err := RunContext(ctx, bob, splitQuery(q, rels, mpc.Bob))
		ch <- res{"bob", err}
	}()
	for i := 0; i < 2; i++ {
		select {
		case r := <-ch:
			if r.err == nil {
				t.Fatalf("%s: run completed despite cancellation", r.who)
			}
			if !errors.Is(r.err, context.Canceled) {
				t.Fatalf("%s: error not attributed to the context: %v", r.who, r.err)
			}
			if !strings.Contains(r.err.Error(), "/") || !strings.Contains(r.err.Error(), "[") {
				t.Fatalf("%s: error not labeled with phase/op[node]: %v", r.who, r.err)
			}
		case <-time.After(10 * time.Second):
			t.Fatal("cancellation did not unblock the parties")
		}
	}
}
