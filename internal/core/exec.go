package core

import (
	"context"
	"fmt"
	"log/slog"
	"time"

	"secyan/internal/gc"
	"secyan/internal/mpc"
	"secyan/internal/obs"
	"secyan/internal/oep"
	"secyan/internal/relation"
	"secyan/internal/yannakakis"
)

// Executor metrics: one increment per plan run / plan step on this
// party's side. Like all obs collection, off until obs.Enable.
var (
	mPlanRuns  = obs.NewCounter("secyan_core_plan_runs_total", "Plan executions started (per party side in this process).")
	mPlanSteps = obs.NewCounter("secyan_core_plan_steps_total", "Plan steps executed (per party side in this process).")
	// Per-backend step counters: how often the auction (or a forced
	// option) routed a semijoin/aggregate step to each backend.
	mBackendSteps = map[BackendID]*obs.Counter{
		BackendPSIOEP:  obs.NewCounter("secyan_core_backend_psi_oep_steps_total", "Plan steps served by the psi-oep backend."),
		BackendBifrost: obs.NewCounter("secyan_core_backend_bifrost_steps_total", "Plan steps served by the bifrost backend."),
		BackendGC:      obs.NewCounter("secyan_core_backend_gc_steps_total", "Plan steps served by the gc backend."),
		BackendLocal:   obs.NewCounter("secyan_core_backend_local_steps_total", "Plan steps with no protocol choice (local/degenerate)."),
	}
	// Query-scoped labeled metrics (bounded cardinality, see
	// DESIGN.md §14): per-phase/backend step attribution and per-shape
	// latency SLO histograms keyed by "root:digest".
	mStepsByLabel = obs.NewCounterVec("secyan_core_steps_by_label_total",
		"Plan steps executed, by protocol phase and serving backend.", "phase", "backend")
	mStepBytesByLabel = obs.NewCounterVec("secyan_core_step_bytes_by_label_total",
		"Measured per-step communication in bytes (both directions), by protocol phase and serving backend.", "phase", "backend")
	mQueryLatency = obs.NewHistogramVec("secyan_core_query_latency_ns",
		"Wall time of completed plan executions in nanoseconds, by query shape (root:digest).", "query")
	mQueryRuns = obs.NewCounterVec("secyan_core_query_runs_by_shape_total",
		"Completed plan executions, by query shape (root:digest) and outcome (ok | error).", "query", "outcome")
)

// This file is the plan executor: Run and RunShared compile the query
// into the same Plan that Explain renders (plan.go) and walk its steps
// in order. Every step runs under the caller's context — cancellation
// unblocks in-flight transport operations via transport.WithContext —
// and is measured individually (bytes, messages, rounds, wall time)
// through transport.Stats snapshots, producing a Trace and feeding
// Party.Observer. Errors are labeled with the step's phase/op/node.

// Run executes the secure Yannakakis protocol for q. Alice receives the
// query results (rows over the output attributes with their aggregated
// annotations, dummy and zero-annotated rows removed); Bob receives nil.
// Both parties must call Run with structurally identical queries (same
// schemas, owners, sizes, output), differing only in which relations they
// hold.
func Run(p *mpc.Party, q *Query) (*relation.Relation, error) {
	rel, _, err := RunContext(context.Background(), p, q)
	return rel, err
}

// ExecOptions tunes a plan execution without affecting its transcript.
type ExecOptions struct {
	// ChunkSize bounds the tuple-plane working set of every operator: a
	// positive tuple count streams relations in chunks of that size, 0
	// uses the process default (relation.DefaultChunkSize), and any
	// negative value (relation.Unbounded) materializes fully. Results,
	// per-step traces and per-stream transport stats are byte-identical
	// for every value — the chunk-invariance suites pin this.
	ChunkSize int
	// Backend forces every semijoin/aggregate step onto one backend
	// wherever it is applicable (see PlanOptions.Backend). Unlike
	// ChunkSize this changes the transcript: both parties must pass the
	// same value.
	Backend BackendID
	// Tag carries the session/query IDs minted by the session layer, so
	// events, labeled metrics and flight records attribute to the right
	// query. Zero falls back to Party.Tag, and a fresh query ID is
	// minted if observation is active with neither set. Tags are
	// process-local bookkeeping only — never on the wire.
	Tag obs.QueryTag
}

// RunContext is Run with cancellation and per-step observability: it
// additionally returns the execution trace (one TraceStep per plan
// step, in plan order), which is valid — as a prefix — even on error.
func RunContext(ctx context.Context, p *mpc.Party, q *Query) (*relation.Relation, *Trace, error) {
	return RunContextOpts(ctx, p, q, ExecOptions{})
}

// RunContextOpts is RunContext with execution options.
func RunContextOpts(ctx context.Context, p *mpc.Party, q *Query, opts ExecOptions) (*relation.Relation, *Trace, error) {
	_, rel, tr, err := runPlan(ctx, p, q, false, opts)
	return rel, tr, err
}

// RunShared executes the protocol but stops before revealing the result
// annotations, returning them in shared form — the building block of the
// query compositions of §7 (avg, ratios, differences; see compose.go).
func RunShared(p *mpc.Party, q *Query) (*SharedResult, error) {
	res, _, err := RunSharedContext(context.Background(), p, q)
	return res, err
}

// RunSharedContext is RunShared with cancellation and tracing.
func RunSharedContext(ctx context.Context, p *mpc.Party, q *Query) (*SharedResult, *Trace, error) {
	return RunSharedContextOpts(ctx, p, q, ExecOptions{})
}

// RunSharedContextOpts is RunSharedContext with execution options.
func RunSharedContextOpts(ctx context.Context, p *mpc.Party, q *Query, opts ExecOptions) (*SharedResult, *Trace, error) {
	res, _, tr, err := runPlan(ctx, p, q, true, opts)
	return res, tr, err
}

// runPlan compiles q and executes the plan step by step. When shared is
// true the final reveal steps are skipped and the shared result
// returned; otherwise the result relation is revealed to Alice.
func runPlan(ctx context.Context, p *mpc.Party, q *Query, shared bool, opts ExecOptions) (res *SharedResult, rel *relation.Relation, tr *Trace, err error) {
	if err := q.Validate(p.Role); err != nil {
		return nil, nil, nil, err
	}
	// Run compiles with estOut=0: the step sequence is estOut-independent
	// and the true output size is only known at run time.
	plan, err := compileQueryOpts(q, p.Ring.Bits,
		PlanOptions{ChunkSize: opts.ChunkSize, Backend: opts.Backend})
	if err != nil {
		return nil, nil, nil, err
	}
	pp, release := p.WithContext(ctx)
	defer release()

	// Protocol-internal dummies must not collide with dummies already in
	// this party's inputs (e.g. private-selection padding).
	ownRels := make([]*relation.Relation, 0, len(q.Inputs))
	for _, in := range q.Inputs {
		if in.Owner == p.Role {
			ownRels = append(ownRels, in.Rel)
		}
	}
	ex := &executor{p: pp, q: q, plan: plan, chunk: plan.ChunkSize,
		dg:  relation.NewDummyGenAfter(ownRels...),
		srs: make([]*SharedRelation, len(q.Inputs)), revealed: map[int]*relation.Relation{}}

	mPlanRuns.Inc()
	// Span tracing: the whole run is one span, each plan phase and step a
	// child, and Track.Bind routes kernel spans (gc, ot, psi) under the
	// step executing them. All of it reads clocks and appends to
	// process-local memory only — never the connection — so transcripts
	// are untouched (guarded by the obs equivalence test).
	track := pp.Track
	var runSpan, phaseSpan obs.Span
	curPhase := ""
	if track != nil {
		unbind := track.Bind()
		defer unbind()
		runSpan = track.Begin("run", "run")
		defer func() {
			phaseSpan.End()
			runSpan.End()
		}()
	}
	live := obs.Enabled()
	if live {
		defer obs.ClearCurrentStep(p.Role.String())
	}

	// Query-scoped observability: resolve the tag (explicit option wins
	// over the party's session tag), minting a query ID for untagged
	// runs so every record is addressable. Like span tracing, all of it
	// reads clocks and process-local memory only — never the connection.
	tag := opts.Tag
	if tag == (obs.QueryTag{}) {
		tag = p.Tag
	} else if tag.Tenant == "" {
		tag.Tenant = p.Tag.Tenant
	}
	lg := obs.Events()
	eventsOn := lg.On()
	var shape string
	var blame string
	runStart := time.Now()
	if live || eventsOn {
		if tag.QID == 0 {
			tag.QID = obs.NextQueryID()
		}
		shape = plan.Root + ":" + plan.DigestString()[:8]
	}
	if eventsOn {
		lg.Emit("query.start", tag,
			slog.String("party", p.Role.String()),
			slog.String("root", plan.Root),
			slog.Int("steps", len(plan.Steps)),
			slog.String("plan_digest", plan.DigestString()),
			slog.Bool("shared", shared))
		for si := range plan.Steps {
			st := &plan.Steps[si]
			if len(st.Alternatives) < 2 {
				continue
			}
			attrs := make([]slog.Attr, 0, 2+len(st.Alternatives))
			attrs = append(attrs,
				slog.String("step", st.Op+"["+st.Node+"]"),
				slog.String("chosen", string(st.Backend)))
			for _, alt := range st.Alternatives {
				attrs = append(attrs, slog.Int64("bid_"+string(alt.Backend), alt.EstBytes))
			}
			lg.Emit("backend.auction", tag, attrs...)
		}
	}
	defer func() {
		if !live && !eventsOn {
			return
		}
		elapsed := time.Since(runStart)
		rows := 0
		if rel != nil {
			rows = rel.Len()
		}
		if live {
			mQueryLatency.Observe(int64(elapsed), shape)
			outcome := "ok"
			if err != nil {
				outcome = "error"
			}
			mQueryRuns.Add(1, shape, outcome)
			obs.Flight().Record(flightRecord(p, plan, tag, tr, rows, runStart, elapsed, err, blame))
		}
		if eventsOn {
			attrs := make([]slog.Attr, 0, 6)
			attrs = append(attrs,
				slog.String("party", p.Role.String()),
				slog.Int64("bytes", tr.TotalBytes()),
				slog.Int64("rounds", tr.TotalRounds()),
				slog.Duration("elapsed", elapsed),
				slog.Int("rows", rows))
			if err != nil {
				attrs = append(attrs, slog.String("error", err.Error()))
			}
			lg.Emit("query.finish", tag, attrs...)
		}
	}()

	tr = &Trace{}
	for si := range plan.Steps {
		st := &plan.Steps[si]
		if shared && st.final {
			continue
		}
		if cerr := ctx.Err(); cerr != nil {
			blame = st.Phase + "/" + st.Op + "[" + st.Node + "]"
			return nil, nil, tr, stepErr(st, cerr)
		}
		mPlanSteps.Inc()
		var stepSpan obs.Span
		if track != nil {
			if st.Phase != curPhase {
				phaseSpan.End()
				phaseSpan = track.Begin("phase", st.Phase)
				curPhase = st.Phase
			}
			stepSpan = track.Begin("step", st.Op+"["+st.Node+"]")
		}
		if live {
			obs.SetCurrentStep(obs.StepStatus{
				Party: p.Role.String(), Phase: st.Phase, Op: st.Op, Node: st.Node,
				N: st.N, Step: si + 1, Steps: len(plan.Steps),
				StartedUnixNano: time.Now().UnixNano()})
		}
		before := pp.Conn.Stats()
		start := time.Now()
		err := ex.exec(st)
		after := pp.Conn.Stats()
		rec := TraceStep{Phase: st.Phase, Op: st.Op, Node: st.Node, Backend: string(st.Backend),
			N: st.N, EstBytes: st.EstBytes,
			Bytes:    after.TotalBytes() - before.TotalBytes(),
			Messages: (after.MessagesSent + after.MessagesRecv) - (before.MessagesSent + before.MessagesRecv),
			Rounds:   after.Rounds - before.Rounds,
			Elapsed:  time.Since(start)}
		if st.kind == stepLocalJoin || st.kind == stepAlignAnnotations ||
			st.kind == stepAnnotationProduct || st.kind == stepRevealAnnotations {
			rec.N = ex.out // the true output size, known after the local join
		}
		stepSpan.EndN(int64(rec.N))
		tr.Steps = append(tr.Steps, rec)
		if pp.Observer != nil {
			pp.Observer(rec)
		}
		if live {
			backendLbl := string(st.Backend)
			if backendLbl == "" {
				backendLbl = "none"
			}
			mStepsByLabel.Add(1, st.Phase, backendLbl)
			mStepBytesByLabel.Add(rec.Bytes, st.Phase, backendLbl)
		}
		if eventsOn {
			lg.Emit("query.step", tag,
				slog.String("party", p.Role.String()),
				slog.String("phase", st.Phase),
				slog.String("op", st.Op),
				slog.String("node", st.Node),
				slog.String("backend", string(st.Backend)),
				slog.Int64("bytes", rec.Bytes),
				slog.Int64("rounds", rec.Rounds),
				slog.Duration("elapsed", rec.Elapsed))
		}
		if err != nil {
			// After cancellation the transport reports artifacts of the
			// teardown; attribute them to the context instead.
			if cerr := ctx.Err(); cerr != nil {
				err = cerr
			}
			blame = st.Phase + "/" + st.Op + "[" + st.Node + "]"
			return nil, nil, tr, stepErr(st, err)
		}
	}

	if shared {
		if plan.singleNode >= 0 {
			return &SharedResult{Single: ex.srs[plan.singleNode]}, nil, tr, nil
		}
		return &SharedResult{Join: ex.jr}, nil, tr, nil
	}
	if p.Role != mpc.Alice {
		return nil, nil, tr, nil
	}
	out, err := normalizeResult(ex.result, q.Output)
	if err != nil {
		return nil, nil, tr, err
	}
	return nil, out, tr, nil
}

// flightRecord assembles the flight recorder's completed-query record
// from the measured trace and the compiled plan.
func flightRecord(p *mpc.Party, plan *Plan, tag obs.QueryTag, tr *Trace, rows int,
	start time.Time, elapsed time.Duration, err error, blame string) obs.QueryRecord {
	rec := obs.QueryRecord{
		QID:           tag.QID,
		SID:           tag.SID,
		Tenant:        tag.Tenant,
		Party:         p.Role.String(),
		Peer:          p.Role.Other().String(),
		Query:         plan.Root,
		PlanDigest:    plan.DigestString(),
		Steps:         len(plan.Steps),
		ChunkSize:     plan.ChunkSize,
		StartUnixNano: start.UnixNano(),
		Seconds:       elapsed.Seconds(),
		OutputRows:    rows,
		Auctions:      planAuctions(plan),
	}
	if tr != nil {
		rec.Bytes = tr.TotalBytes()
		rec.Rounds = tr.TotalRounds()
		rec.Phases = tr.PhaseStats()
	}
	if err != nil {
		rec.Error = err.Error()
		rec.Blame = blame
	}
	return rec
}

// planAuctions extracts the contested backend auctions (steps where
// more than one backend bid) with their full pricing tables.
func planAuctions(plan *Plan) []obs.AuctionOutcome {
	var out []obs.AuctionOutcome
	for i := range plan.Steps {
		st := &plan.Steps[i]
		if len(st.Alternatives) < 2 {
			continue
		}
		bids := make(map[string]int64, len(st.Alternatives))
		for _, alt := range st.Alternatives {
			bids[string(alt.Backend)] = alt.EstBytes
		}
		out = append(out, obs.AuctionOutcome{
			Step:   st.Op + "[" + st.Node + "]",
			Chosen: string(st.Backend),
			Bids:   bids,
		})
	}
	return out
}

// stepErr labels an operator error with its plan coordinates, e.g.
// "reduce/psi-payload[lineitem→orders]: ...".
func stepErr(st *PlanStep, err error) error {
	return fmt.Errorf("%s/%s[%s]: %w", st.Phase, st.Op, st.Node, err)
}

// executor is the mutable state of one plan execution on one party.
type executor struct {
	p     *mpc.Party
	q     *Query
	plan  *Plan
	dg    *relation.DummyGen
	chunk int // tuple-plane streaming granularity (plan.ChunkSize)

	srs      []*SharedRelation          // per tree node, updated in place
	pending  *SharedRelation            // aggregate/π¹ result feeding the next semijoin-into
	revealed map[int]*relation.Relation // join-phase revealed relations (Alice)
	prov     *yannakakis.Provenance     // Alice only
	out      int                        // true output size, set by local-join
	factors  [][]uint64                 // aligned annotation shares, join order
	jr       *JoinResult
	result   *relation.Relation // Alice: revealed result rows before normalization
}

func (ex *executor) exec(st *PlanStep) error {
	p := ex.p
	switch st.kind {
	case stepOTSetup:
		// Both parties establish the direction eagerly and in plan order,
		// so setup traffic lands on this step rather than inside whichever
		// operator first needs it. A cache hit (composed queries reusing a
		// party) costs nothing.
		if p.Role == st.sender {
			_, err := p.OTSender()
			return err
		}
		_, err := p.OTReceiver()
		return err
	case stepShareInput, stepPlainInput:
		in := ex.q.Inputs[st.node]
		var sr *SharedRelation
		var err error
		if st.kind == stepShareInput {
			sr, err = shareInputChunked(p, in.Owner, in.Rel, in.Schema, in.N, ex.chunk)
		} else {
			sr, err = NewPlainInput(p, in.Owner, in.Rel, in.Schema, in.N)
		}
		if err != nil {
			return err
		}
		ex.srs[st.node] = sr
		return nil
	case stepAggregate:
		agg, err := ex.merge(st, ex.srs[st.node], mergeSum)
		if err != nil {
			return err
		}
		if st.intoPending {
			ex.pending = agg
		} else {
			ex.srs[st.node] = agg
		}
		return nil
	case stepProjectOne:
		ind, err := ex.merge(st, ex.srs[st.node], mergeOr)
		if err != nil {
			return err
		}
		ex.pending = ind
		return nil
	case stepSemijoinInto:
		child := ex.pending
		ex.pending = nil
		countBackendStep(st)
		joined, err := semijoinIntoChunked(p, ex.dg, ex.srs[st.parent], child, ex.chunk, st.Backend)
		if err != nil {
			return err
		}
		ex.srs[st.parent] = joined
		return nil
	case stepRevealRelation:
		res, err := revealRelationChunked(p, ex.srs[st.node], ex.chunk)
		if err != nil {
			return err
		}
		ex.result = res
		return nil
	case stepRevealRows:
		r, err := revealNonzeroRows(p, ex.srs[st.node], ex.chunk)
		if err != nil {
			return err
		}
		ex.revealed[st.node] = r
		return nil
	case stepLocalJoin:
		return ex.localJoin()
	case stepAlignAnnotations:
		return ex.alignNode(st.node)
	case stepAnnotationProduct:
		return ex.annotationProduct()
	case stepRevealAnnotations:
		return ex.revealJoin()
	}
	return fmt.Errorf("core: unknown plan step kind %d", st.kind)
}

// merge dispatches one aggregate/project-one step to the backend the
// plan chose for it.
func (ex *executor) merge(st *PlanStep, s *SharedRelation, kind mergeKind) (*SharedRelation, error) {
	countBackendStep(st)
	if st.Backend == BackendGC {
		return runMergeGC(ex.p, ex.dg, s, st.attrs, kind, ex.chunk)
	}
	return runMerge(ex.p, ex.dg, s, st.attrs, kind, ex.chunk)
}

// countBackendStep bumps the per-backend obs counter for one executed
// semijoin/aggregate step.
func countBackendStep(st *PlanStep) {
	if c := mBackendSteps[st.Backend]; c != nil {
		c.Inc()
	}
}

// localJoin is §6.3 step 2: Alice joins the revealed relations with the
// plaintext Yannakakis engine, tracking provenance, and shares OUT.
func (ex *executor) localJoin() error {
	p := ex.p
	if p.Role != mpc.Alice {
		out, err := recvPublicSize(p.Conn)
		if err != nil {
			return err
		}
		ex.out = out
		return nil
	}
	rels := make([]*relation.Relation, len(ex.srs))
	for i, s := range ex.srs {
		if r := ex.revealed[i]; r != nil {
			rels[i] = r
		} else {
			rels[i] = relation.New(s.Schema)
		}
	}
	prov, err := yannakakis.JoinProvenance(ex.plan.tree, rels, ex.plan.joinOrder)
	if err != nil {
		return err
	}
	ex.prov = prov
	ex.out = prov.Result.Len()
	return sendPublicSize(p.Conn, ex.out)
}

// alignNode is §6.3 step 3a for one relation: an OEP programmed by
// Alice's provenance re-aligns its annotation shares to the join rows.
// With an empty join it is a recorded no-op on both sides.
func (ex *executor) alignNode(node int) error {
	if ex.out == 0 {
		return nil
	}
	p := ex.p
	s := ex.srs[node]
	var f []uint64
	var err error
	if p.Role == mpc.Alice {
		// The OEP program is O(out) by protocol shape; its assembly
		// strides in chunks like every other tuple-plane loop.
		xi := make([]int, ex.out)
		if err := relation.Range(ex.out, ex.chunk, func(lo, hi int) error {
			for row := lo; row < hi; row++ {
				src := ex.prov.Sources[row][node]
				if src < 0 {
					return fmt.Errorf("core: missing provenance for node %d", node)
				}
				xi[row] = src
			}
			return nil
		}); err != nil {
			return err
		}
		f, err = oep.RunProgrammer(p, xi, s.N, s.Annot)
	} else {
		f, err = oep.RunHelper(p, s.N, ex.out, s.Annot)
	}
	if err != nil {
		return err
	}
	ex.factors = append(ex.factors, f)
	return nil
}

// annotationProduct is §6.3 step 3b: one garbled circuit multiplies the
// aligned factors per join row, yielding shared result annotations, and
// assembles the JoinResult (rows on Alice's side).
func (ex *executor) annotationProduct() error {
	p := ex.p
	schema := unionSchema(ex.srs, ex.plan.joinOrder)
	out := ex.out
	if out == 0 {
		ex.jr = &JoinResult{N: 0, Schema: schema}
		if p.Role == mpc.Alice {
			ex.jr.Rows = relation.New(schema)
		}
		return nil
	}
	k := len(ex.plan.joinOrder)
	ell := p.Ring.Bits
	circ := buildProductCircuit(out, k, ell)
	annot := make([]uint64, out)
	if p.Role == mpc.Alice {
		evalBits := make([]bool, 0, out*k*ell)
		relation.Range(out, ex.chunk, func(lo, hi int) error {
			for row := lo; row < hi; row++ {
				for fi := 0; fi < k; fi++ {
					evalBits = gc.AppendBits(evalBits, ex.factors[fi][row], ell)
				}
			}
			return nil
		})
		bits, err := p.RunCircuit(circ, evalBits, nil, mpc.Bob)
		if err != nil {
			return err
		}
		relation.Range(out, ex.chunk, func(lo, hi int) error {
			for row := lo; row < hi; row++ {
				annot[row] = p.Ring.Mask(gc.UintOfBits(bits[row*ell : (row+1)*ell]))
			}
			return nil
		})
	} else {
		priv := make([]bool, 0, out*(k+1)*ell)
		relation.Range(out, ex.chunk, func(lo, hi int) error {
			for row := lo; row < hi; row++ {
				for fi := 0; fi < k; fi++ {
					priv = gc.AppendBits(priv, ex.factors[fi][row], ell)
				}
			}
			return nil
		})
		for row := 0; row < out; row++ {
			r := p.Ring.Random(p.PRG)
			annot[row] = r
			priv = gc.AppendBits(priv, p.Ring.Neg(r), ell)
		}
		if _, err := p.RunCircuit(circ, nil, priv, mpc.Bob); err != nil {
			return err
		}
	}
	ex.jr = &JoinResult{N: out, Schema: schema, Annot: annot}
	if p.Role == mpc.Alice {
		// Reorder the provenance result columns to the union schema.
		rows := relation.New(schema)
		cols, err := ex.prov.Result.Schema.Positions(schema.Attrs)
		if err != nil {
			return err
		}
		for i := range ex.prov.Result.Tuples {
			row := make([]uint64, len(cols))
			for c, cc := range cols {
				row[c] = ex.prov.Result.Tuples[i][cc]
			}
			rows.Append(row, 0)
		}
		ex.jr.Rows = rows
	}
	return nil
}

// revealJoin reveals the join annotations to Alice and filters the
// result rows, mirroring SharedResult.Reveal for the join case.
func (ex *executor) revealJoin() error {
	p := ex.p
	jr := ex.jr
	if p.Role != mpc.Alice {
		return p.RevealToPeer(jr.Annot)
	}
	vals, err := p.RecvReveal(jr.Annot)
	if err != nil {
		return err
	}
	res := relation.New(jr.Schema)
	for i := range jr.Rows.Tuples {
		if vals[i] != 0 {
			res.Append(jr.Rows.Tuples[i], vals[i])
		}
	}
	ex.result = res
	return nil
}
