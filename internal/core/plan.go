package core

import (
	"fmt"
	"hash/fnv"
	"io"
	"sort"
	"strings"

	"secyan/internal/gc"
	"secyan/internal/jointree"
	"secyan/internal/mpc"
	"secyan/internal/oep"
	"secyan/internal/ot"
	"secyan/internal/relation"
)

// This file is the plan compiler: the single place that decides which
// operators a query executes. compileQuery replays the driver's control
// flow over public parameters only (schemas, sizes, owners, plainness),
// so both parties — and Explain — derive the identical Plan; the
// executor in exec.go then walks the steps without re-deciding anything.
// Per-step estimates come from the cost models of the ot, gc, oep and
// psi packages, which are pinned byte-exact to measured traffic by their
// own tests, so EstBytes is a prediction of the wire, not a heuristic.

// stepKind discriminates the executor action behind a plan step.
type stepKind int

const (
	stepOTSetup stepKind = iota
	stepShareInput
	stepPlainInput
	stepAggregate
	stepProjectOne
	stepSemijoinInto
	stepRevealRelation
	stepRevealRows
	stepLocalJoin
	stepAlignAnnotations
	stepAnnotationProduct
	stepRevealAnnotations
)

// otMsgLen is the message width of every protocol-level OT batch: gc
// input labels and oep/psi payload pairs are all 16 bytes.
const otMsgLen = 16

// preOT is one OT-extension batch a plan step will run, identified by
// the sending role and the batch size. The sequence of preOTs across a
// plan's steps is exactly the sequence of Send/Receive batches the
// executor issues per direction, which is what lets Precompute fill the
// random-OT pools so every online batch derandomizes a pooled one.
type preOT struct {
	sender mpc.Role
	m      int
}

// preCirc is one garbled circuit a plan step will run. The build closure
// defers construction to Precompute: planning stays cheap, and circuits
// are only materialized when ahead-of-time garbling actually wants them.
type preCirc struct {
	garbler mpc.Role
	build   func() *gc.Circuit
}

// PlanStep is one operator invocation in the plan.
type PlanStep struct {
	Phase string // setup | input | reduce | aggregate | semijoin | join | reveal
	Op    string
	Node  string // relation involved (or "→parent" notation)
	N     int    // primary size
	// EstBytes estimates the step's total communication (both
	// directions). Join-phase steps scale with the (unknown) output size
	// and use EstOut.
	EstBytes int64
	// Chunks is the step's chunk demand under the plan's ChunkSize: the
	// number of chunk-sized windows its tuple-plane loops process
	// (⌈N/ChunkSize⌉; 0 for size-independent steps). It sits next to the
	// preOT/preCirc demands: a description of the step's data plane, with
	// no effect on the wire — chunking is transcript-invariant.
	Chunks int
	// EstOfflineBytes and EstOnlineBytes split the step's traffic under
	// the precomputed schedule: offline moves the base OTs and the
	// OT-extension correction matrices, online keeps everything else
	// plus ⌈m/8⌉ derandomization bits per pooled batch (so the two may
	// sum to slightly more than EstBytes). Without precomputation the
	// whole step is online and EstBytes alone applies.
	EstOfflineBytes int64
	EstOnlineBytes  int64
	// Backend is the secure-join backend serving this step. Semijoin and
	// aggregate steps carry the winner of the per-node backend auction
	// (see backend.go); every other step is empty.
	Backend BackendID
	// Alternatives is the step's full pricing table: every backend that
	// bid, its estimate, and which one won. Explain renders it.
	Alternatives []BackendChoice

	// Executor fields, invisible to plan consumers: the step's action and
	// its operands as node indices into the query's inputs.
	kind        stepKind
	node        int             // primary node (input/aggregate/reveal steps)
	parent      int             // semijoin-into target node
	attrs       []relation.Attr // aggregation/projection attributes
	sender      mpc.Role        // OT-setup direction: the role acting as OT sender
	intoPending bool            // aggregate result feeds the next semijoin-into
	final       bool            // reveal step skipped by RunShared

	// Precompute demands: the OT batches and circuits this step will
	// run, in execution order. Join-phase steps scale with the unknown
	// output size and declare none.
	preOTs   []preOT
	preCircs []preCirc
}

// Estimate returns the step's predicted communication in bytes (both
// directions), derived from the circuit builders and switching-network
// closed forms the executor actually uses.
func (s *PlanStep) Estimate() int64 { return s.EstBytes }

// Plan is the physical plan of a query: the ordered operator DAG that
// Explain renders and the executor runs.
type Plan struct {
	Steps     []PlanStep
	Root      string
	Remaining []string
	// EstBytes totals the step estimates.
	EstBytes int64
	// EstOfflineBytes and EstOnlineBytes total the per-step phase splits
	// under the precomputed schedule (see PlanStep).
	EstOfflineBytes int64
	EstOnlineBytes  int64
	// EstOut is the output-size assumption used for join-phase steps.
	EstOut int
	// ChunkSize is the tuple-plane streaming granularity the executor
	// will run this plan with: a positive tuple count, or
	// relation.Unbounded for fully materialized execution. It bounds
	// per-operator working-set memory and nothing else — transcripts are
	// identical for every value (see DESIGN.md §12).
	ChunkSize int

	tree       *jointree.Tree
	joinOrder  []int // sorted surviving nodes of the final join (nil when single)
	singleNode int   // surviving node of the single-survivor shortcut, -1 otherwise
}

// Digest is a stable 64-bit fingerprint of the plan's operator
// structure: root plus the step sequence's phases, operators, node
// labels and chosen backends — but not input sizes — so runs of the
// same query shape share a digest across dataset scales. Both parties
// compile identical plans, so both compute the same digest; the flight
// recorder and the per-shape SLO histograms key on it.
func (p *Plan) Digest() uint64 {
	h := fnv.New64a()
	io.WriteString(h, p.Root)
	for i := range p.Steps {
		s := &p.Steps[i]
		io.WriteString(h, "|")
		io.WriteString(h, s.Phase)
		io.WriteString(h, "/")
		io.WriteString(h, s.Op)
		io.WriteString(h, "[")
		io.WriteString(h, s.Node)
		io.WriteString(h, "]")
		io.WriteString(h, string(s.Backend))
	}
	return h.Sum64()
}

// DigestString renders Digest as 16 hex digits.
func (p *Plan) DigestString() string { return fmt.Sprintf("%016x", p.Digest()) }

// PlanOptions parameterize compilation.
type PlanOptions struct {
	// EstOut is the assumed output size, used only by the join-phase
	// steps of multi-survivor queries.
	EstOut int
	// ChunkSize is the tuple-plane streaming granularity (0 = the
	// process default, negative = relation.Unbounded).
	ChunkSize int
	// Backend forces every semijoin/aggregate step onto one backend
	// wherever it is applicable; inapplicable steps keep the cost-based
	// choice. Empty means cost-based selection everywhere.
	Backend BackendID
}

// Explain builds the plan for q with estOut as the assumed output size
// (used only by the join-phase steps of multi-survivor queries). The
// returned Plan is the same object the executor runs: Run differs only
// in feeding it data.
func Explain(q *Query, ringBits, estOut int) (*Plan, error) {
	return compileQueryOpts(q, ringBits, PlanOptions{EstOut: estOut})
}

// ExplainChunked is Explain with an explicit chunk size (0 = the
// process default, negative = relation.Unbounded), populating the
// plan's ChunkSize and per-step chunk demands.
func ExplainChunked(q *Query, ringBits, estOut, chunk int) (*Plan, error) {
	return compileQueryOpts(q, ringBits, PlanOptions{EstOut: estOut, ChunkSize: chunk})
}

// ExplainOpts is Explain with full PlanOptions, including a forced
// backend.
func ExplainOpts(q *Query, ringBits int, po PlanOptions) (*Plan, error) {
	return compileQueryOpts(q, ringBits, po)
}

// nodeState is the public protocol state of one tree node during
// compilation: everything the cost model and operator dispatch depend
// on, and nothing data-dependent.
type nodeState struct {
	schema relation.Schema
	n      int
	plain  bool
	holder mpc.Role
}

// interpCost is the common shape of the garbled-circuit estimators:
// interpolate the circuit dimensions in the tuple count and price the
// resulting messages.
func interpCost(n int, build func(int) *gc.Circuit) int64 {
	if n == 0 {
		return 0
	}
	return gc.InterpolateDims(build, n).MessageCost()
}

func productCost(n, k, ell int) int64 {
	return interpCost(n, func(m int) *gc.Circuit { return buildProductCircuit(m, k, ell) })
}

// compileQuery compiles q into its physical plan with default options.
func compileQuery(q *Query, ringBits, estOut, chunk int) (*Plan, error) {
	return compileQueryOpts(q, ringBits, PlanOptions{EstOut: estOut, ChunkSize: chunk})
}

// compileQueryOpts compiles q into its physical plan. The join-tree
// root is itself chosen by cost: every candidate rooted tree the
// planner accepts is compiled (with the same options, including any
// forced backend) and the one with the smallest total estimate wins;
// ties keep the planner's first candidate, which is the tree the
// pre-costing planner would have picked.
func compileQueryOpts(q *Query, ringBits int, po PlanOptions) (*Plan, error) {
	switch po.Backend {
	case "", BackendPSIOEP, BackendBifrost, BackendGC:
	default:
		return nil, fmt.Errorf("core: unknown backend %q (want auto, psi-oep, bifrost or gc)", po.Backend)
	}
	tree, err := q.Hypergraph().PlanCosted(q.Output, func(t *jointree.Tree) (int64, error) {
		pl, err := compileTree(q, t, ringBits, po)
		if err != nil {
			return 0, err
		}
		return pl.EstBytes, nil
	})
	if err != nil {
		return nil, err
	}
	return compileTree(q, tree, ringBits, po)
}

// compileTree compiles q over one rooted join tree, mirroring the
// three-phase driver on nodeState. po.EstOut sizes the join-phase
// estimates only; the step sequence is independent of it, so a plan
// compiled with EstOut=0 (as Run does) produces the same trace shape as
// one compiled with the true output size.
func compileTree(q *Query, tree *jointree.Tree, ringBits int, po PlanOptions) (*Plan, error) {
	estOut, chunk := po.EstOut, po.ChunkSize
	if chunk == 0 {
		chunk = relation.DefaultChunkSize()
	}
	if chunk <= 0 {
		chunk = relation.Unbounded
	}
	ell := ringBits
	plan := &Plan{Root: q.Inputs[tree.Root].Name, EstOut: estOut, ChunkSize: chunk,
		tree: tree, singleNode: -1}
	var steps []PlanStep
	add := func(s PlanStep) { steps = append(steps, s) }
	// needOT tracks which OT-extension directions the plan uses, indexed
	// by the sending role; matching setup steps are prepended at the end.
	var needOT [2]bool

	outSet := map[relation.Attr]bool{}
	for _, a := range q.Output {
		outSet[a] = true
	}
	state := make([]nodeState, len(q.Inputs))
	for i, in := range q.Inputs {
		state[i] = nodeState{schema: in.Schema, n: in.N, plain: !q.NoLocalOptimizations, holder: in.Owner}
		if q.NoLocalOptimizations {
			add(PlanStep{Phase: "input", Op: "share-annotations", Node: in.Name, N: in.N,
				EstBytes: int64(8 * in.N), kind: stepShareInput, node: i})
		} else {
			add(PlanStep{Phase: "input", Op: "plain-input", Node: in.Name, N: in.N,
				kind: stepPlainInput, node: i})
		}
	}

	// Semijoin and aggregate steps are priced by a backend auction (see
	// backend.go): every applicable backend bids its byte estimate plus
	// precompute demands — every OT batch (in execution order) and every
	// garbled circuit the operator will run — and the winner's demands
	// replay the exact dispatch logic of the operators (aggregate.go,
	// semijoin.go), so Precompute can garble and fill pools from the
	// plan alone. chooseAgg and chooseSemijoin merge the winner's
	// OT-extension directions into needOT.
	chooseAgg := func(st nodeState, kind mergeKind) (backendBid, []BackendChoice) {
		bid, alts := pickBackend(aggBids(st, kind, ell), po.Backend)
		needOT[0] = needOT[0] || bid.needs[0]
		needOT[1] = needOT[1] || bid.needs[1]
		return bid, alts
	}
	chooseSemijoin := func(par, child nodeState) (backendBid, []BackendChoice) {
		bid, alts := pickBackend(semijoinBids(par, child, ell), po.Backend)
		needOT[0] = needOT[0] || bid.needs[0]
		needOT[1] = needOT[1] || bid.needs[1]
		return bid, alts
	}
	// revealRowsCost prices the §6.3 step-1 reveal of one relation.
	revealRowsCost := func(st nodeState) (int64, []preOT, []preCirc) {
		if st.n == 0 {
			return 0, nil, nil
		}
		cols := len(st.schema.Attrs)
		if st.plain {
			if st.holder == mpc.Bob {
				return int64(8 * st.n * cols), nil, nil
			}
			return 0, nil, nil
		}
		needOT[mpc.Bob] = true
		n := st.n
		withRows := st.holder == mpc.Bob
		circs := []preCirc{{mpc.Bob,
			func() *gc.Circuit { return buildRevealCircuit(n, cols, ell, withRows) }}}
		ots := []preOT{{mpc.Bob, n * ell}}
		cost := interpCost(n, func(m int) *gc.Circuit { return buildRevealCircuit(m, cols, ell, withRows) })
		return cost, ots, circs
	}

	// Phase 1: Reduce (§6.4 step 1), replayed on public state.
	removed := make([]bool, len(state))
	aggregated := make([]bool, len(state))
	childrenLeft := make([]int, len(state))
	for i, cs := range tree.Children {
		childrenLeft[i] = len(cs)
	}
	for _, i := range tree.PostOrder {
		if i == tree.Root || childrenLeft[i] > 0 {
			continue
		}
		parent := tree.Parent[i]
		var fPrime []relation.Attr
		for _, a := range state[i].schema.Attrs {
			if outSet[a] || state[parent].schema.Has(a) {
				fPrime = append(fPrime, a)
			}
		}
		subset := true
		for _, a := range fPrime {
			if !state[parent].schema.Has(a) {
				subset = false
				break
			}
		}
		bid, alts := chooseAgg(state[i], mergeSum)
		add(PlanStep{Phase: "reduce", Op: "aggregate", Node: q.Inputs[i].Name,
			N: state[i].n, EstBytes: bid.cost, Backend: bid.id, Alternatives: alts,
			kind: stepAggregate, node: i, attrs: fPrime, intoPending: subset,
			preOTs: bid.ots, preCircs: bid.circs})
		state[i].schema = relation.MustSchema(fPrime...)
		if subset {
			bid, alts := chooseSemijoin(state[parent], state[i])
			add(PlanStep{Phase: "reduce", Op: "semijoin-into", Node: q.Inputs[i].Name + "→" + q.Inputs[parent].Name,
				N: state[parent].n, EstBytes: bid.cost, Backend: bid.id, Alternatives: alts,
				kind: stepSemijoinInto, parent: parent,
				preOTs: bid.ots, preCircs: bid.circs})
			state[parent].plain = false
			removed[i] = true
			childrenLeft[parent]--
		} else {
			aggregated[i] = true
		}
	}

	var remaining []int
	for _, i := range tree.PostOrder {
		if !removed[i] {
			remaining = append(remaining, i)
			plan.Remaining = append(plan.Remaining, q.Inputs[i].Name)
		}
	}

	// Soundness guards (see driver.go history: the planner only emits
	// trees satisfying these, but they are cheap and protect against
	// planner regressions). They depend only on public schemas, so the
	// compiler — shared by Explain and the executor — is the right home.
	for _, i := range remaining {
		if i == tree.Root {
			continue
		}
		for _, a := range state[i].schema.Attrs {
			if !outSet[a] {
				return nil, fmt.Errorf("core: internal error: surviving node %s kept non-output attribute %q", q.Inputs[i].Name, a)
			}
		}
	}
	for _, a := range state[tree.Root].schema.Attrs {
		if outSet[a] {
			continue
		}
		for _, i := range remaining {
			if i != tree.Root && state[i].schema.Has(a) {
				return nil, fmt.Errorf("core: internal error: root folds attribute %q still joined by %s", a, q.Inputs[i].Name)
			}
		}
	}

	// Every surviving node that skipped the reduce-phase aggregation gets
	// one now (folds non-output attributes, collapses duplicates).
	for _, i := range remaining {
		if aggregated[i] {
			continue
		}
		var keep []relation.Attr
		for _, a := range state[i].schema.Attrs {
			if outSet[a] {
				keep = append(keep, a)
			}
		}
		bid, alts := chooseAgg(state[i], mergeSum)
		add(PlanStep{Phase: "aggregate", Op: "aggregate", Node: q.Inputs[i].Name,
			N: state[i].n, EstBytes: bid.cost, Backend: bid.id, Alternatives: alts,
			kind: stepAggregate, node: i, attrs: keep,
			preOTs: bid.ots, preCircs: bid.circs})
		state[i].schema = relation.MustSchema(keep...)
	}

	if len(remaining) == 1 {
		// Single-survivor shortcut (§8.1): reveal rows and annotations.
		r := remaining[0]
		plan.singleNode = r
		cost, ots, circs := revealRowsCost(state[r])
		add(PlanStep{Phase: "reveal", Op: "reveal-relation", Node: q.Inputs[r].Name,
			N: state[r].n, EstBytes: cost + int64(8*state[r].n),
			kind: stepRevealRelation, node: r, final: true,
			preOTs: ots, preCircs: circs})
		return plan.seal(steps, needOT), nil
	}

	// Phase 2: Semijoin — π¹ on the filter side plus the semijoin itself.
	semijoin := func(target, by int) {
		shared := state[target].schema.Intersect(state[by].schema)
		bid, alts := chooseAgg(state[by], mergeOr)
		add(PlanStep{Phase: "semijoin", Op: "project-one", Node: q.Inputs[by].Name,
			N: state[by].n, EstBytes: bid.cost, Backend: bid.id, Alternatives: alts,
			kind: stepProjectOne, node: by, attrs: shared,
			preOTs: bid.ots, preCircs: bid.circs})
		ind := nodeState{schema: relation.MustSchema(shared...), n: state[by].n,
			plain: state[by].plain, holder: state[by].holder}
		bid, alts = chooseSemijoin(state[target], ind)
		add(PlanStep{Phase: "semijoin", Op: "semijoin-into", Node: q.Inputs[by].Name + "→" + q.Inputs[target].Name,
			N: state[target].n, EstBytes: bid.cost, Backend: bid.id, Alternatives: alts,
			kind: stepSemijoinInto, parent: target,
			preOTs: bid.ots, preCircs: bid.circs})
		state[target].plain = false
	}
	for _, i := range remaining {
		if i != tree.Root {
			semijoin(tree.Parent[i], i)
		}
	}
	for idx := len(remaining) - 1; idx >= 0; idx-- {
		if i := remaining[idx]; i != tree.Root {
			semijoin(i, tree.Parent[i])
		}
	}

	// Phase 3: Full join (§6.3), decomposed into its message-level steps
	// so each gets its own trace record. The executor visits nodes in
	// sorted order, matching ObliviousJoin.
	order := append([]int(nil), remaining...)
	sort.Ints(order)
	plan.joinOrder = order
	joinLabel := strings.Join(plan.Remaining, "⋈")
	for _, i := range order {
		cost, ots, circs := revealRowsCost(state[i])
		add(PlanStep{Phase: "join", Op: "reveal-rows", Node: q.Inputs[i].Name,
			N: state[i].n, EstBytes: cost,
			kind: stepRevealRows, node: i,
			preOTs: ots, preCircs: circs})
	}
	add(PlanStep{Phase: "join", Op: "local-join", Node: joinLabel,
		N: estOut, EstBytes: 8, kind: stepLocalJoin})
	for _, i := range order {
		var est int64
		if estOut > 0 {
			est = oep.Cost(state[i].n, estOut, false)
		}
		add(PlanStep{Phase: "join", Op: "align-annotations", Node: q.Inputs[i].Name,
			N: estOut, EstBytes: est, kind: stepAlignAnnotations, node: i})
	}
	add(PlanStep{Phase: "join", Op: "annotation-product", Node: joinLabel,
		N: estOut, EstBytes: productCost(estOut, len(order), ell), kind: stepAnnotationProduct})
	add(PlanStep{Phase: "reveal", Op: "reveal-annotations", Node: "result",
		N: estOut, EstBytes: int64(8 * estOut), kind: stepRevealAnnotations, final: true})
	return plan.seal(steps, needOT), nil
}

// seal prepends the base-OT setup steps for every OT direction the plan
// uses and totals the estimates. Setup is priced per direction; when a
// composed query reuses a party's existing OT sessions the setup steps
// execute as free cache hits.
func (p *Plan) seal(steps []PlanStep, needOT [2]bool) *Plan {
	var all []PlanStep
	for _, r := range []mpc.Role{mpc.Alice, mpc.Bob} {
		if needOT[r] {
			all = append(all, PlanStep{Phase: "setup", Op: "base-ot", Node: r.String() + " sends",
				EstBytes: ot.SetupCost(), kind: stepOTSetup, sender: r})
		}
	}
	p.Steps = append(all, steps...)
	p.EstBytes = 0
	for i := range p.Steps {
		s := &p.Steps[i]
		s.Chunks = relation.NumChunks(s.N, p.ChunkSize)
		p.EstBytes += s.EstBytes
		// Phase split: base OTs move entirely offline; for every other
		// step, offline carries its OT batches' correction matrices and
		// online keeps the remainder plus the derandomization bits.
		if s.kind == stepOTSetup {
			s.EstOfflineBytes = s.EstBytes
		} else {
			var saved int64
			for _, d := range s.preOTs {
				s.EstOfflineBytes += ot.ExtOfflineCost(d.m)
				saved += ot.ExtCost(d.m, otMsgLen) - ot.ExtOnlineCost(d.m, otMsgLen)
			}
			s.EstOnlineBytes = s.EstBytes - saved
		}
		p.EstOfflineBytes += s.EstOfflineBytes
		p.EstOnlineBytes += s.EstOnlineBytes
	}
	return p
}
