package core

import (
	"fmt"
	"io"
	"time"

	"secyan/internal/mpc"
	"secyan/internal/obs"
)

// TraceStep is one executed plan step's record; it aliases mpc.StepTrace
// so observers subscribed through Party.Observer and consumers of the
// Trace returned by RunContext see the same type.
type TraceStep = mpc.StepTrace

// Trace is the execution record of one plan run: one entry per executed
// step, in plan order. On error it holds the steps completed (or
// attempted) so far.
type Trace struct {
	Steps []TraceStep
}

// TotalBytes sums the measured communication over all steps (both
// directions, as seen from this party — the protocols are synchronous,
// so both parties measure the same totals).
func (t *Trace) TotalBytes() int64 {
	var total int64
	for i := range t.Steps {
		total += t.Steps[i].Bytes
	}
	return total
}

// TotalRounds sums the measured communication rounds over all steps.
func (t *Trace) TotalRounds() int64 {
	var total int64
	for i := range t.Steps {
		total += t.Steps[i].Rounds
	}
	return total
}

// PhaseStats folds the per-step trace into per-phase totals, in first-
// appearance order — the flight recorder's per-phase attribution.
func (t *Trace) PhaseStats() []obs.PhaseStat {
	var out []obs.PhaseStat
	idx := map[string]int{}
	for i := range t.Steps {
		s := &t.Steps[i]
		j, ok := idx[s.Phase]
		if !ok {
			j = len(out)
			idx[s.Phase] = j
			out = append(out, obs.PhaseStat{Phase: s.Phase})
		}
		out[j].Bytes += s.Bytes
		out[j].Rounds += s.Rounds
		out[j].Seconds += s.Elapsed.Seconds()
	}
	return out
}

// Format renders the trace as an EXPLAIN ANALYZE-style table: the plan
// columns plus measured bytes, messages, rounds and wall time per step.
func (t *Trace) Format(w io.Writer) {
	fmt.Fprintf(w, "%-10s %-20s %-28s %-8s %10s %14s %14s %6s %7s %12s\n",
		"phase", "operator", "relation", "backend", "rows", "est. comm", "meas. comm", "msgs", "rounds", "time")
	var est, meas, msgs int64
	var elapsed time.Duration
	for _, s := range t.Steps {
		est += s.EstBytes
		meas += s.Bytes
		msgs += s.Messages
		elapsed += s.Elapsed
		fmt.Fprintf(w, "%-10s %-20s %-28s %-8s %10d %14s %14s %6d %7d %12s\n",
			s.Phase, s.Op, s.Node, s.Backend, s.N, fmtBytes(s.EstBytes), fmtBytes(s.Bytes),
			s.Messages, s.Rounds, s.Elapsed.Round(time.Microsecond))
	}
	fmt.Fprintf(w, "total: estimated %s, measured %s, %d messages, elapsed %s\n",
		fmtBytes(est), fmtBytes(meas), msgs, elapsed.Round(time.Microsecond))
}
