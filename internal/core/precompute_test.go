package core

import (
	"context"
	"math/rand"
	"reflect"
	"testing"

	"secyan/internal/mpc"
	"secyan/internal/obs"
	"secyan/internal/relation"
)

// runPrecomputed mirrors runTraced but executes the offline phase on
// both parties first. It returns Alice's result plus her offline and
// online traces.
func runPrecomputed(t *testing.T, q *Query, rels []*relation.Relation) (*relation.Relation, *Trace, *Trace) {
	t.Helper()
	alice, bob := mpc.Pair(testRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	ctx := context.Background()

	offErr := make(chan error, 1)
	go func() {
		_, err := Precompute(ctx, bob, splitQuery(q, rels, mpc.Bob))
		if err != nil {
			bob.Conn.Close()
		}
		offErr <- err
	}()
	offTr, err := Precompute(ctx, alice, splitQuery(q, rels, mpc.Alice))
	if err != nil {
		t.Fatalf("alice precompute: %v", err)
	}
	if berr := <-offErr; berr != nil {
		t.Fatalf("bob precompute: %v", berr)
	}

	onErr := make(chan error, 1)
	go func() {
		_, _, err := RunContext(ctx, bob, splitQuery(q, rels, mpc.Bob))
		if err != nil {
			bob.Conn.Close()
		}
		onErr <- err
	}()
	rel, onTr, err := RunContext(ctx, alice, splitQuery(q, rels, mpc.Alice))
	if err != nil {
		t.Fatalf("alice run: %v", err)
	}
	if berr := <-onErr; berr != nil {
		t.Fatalf("bob run: %v", berr)
	}
	return rel, offTr, onTr
}

func relsEqual(a, b *relation.Relation) bool {
	if a.Len() != b.Len() || !reflect.DeepEqual(a.Schema, b.Schema) {
		return false
	}
	return reflect.DeepEqual(a.Tuples, b.Tuples) && reflect.DeepEqual(a.Annot, b.Annot)
}

// counterDelta reads the named counter from the default obs registry.
func counterValue(t *testing.T, name string) int64 {
	t.Helper()
	v, ok := obs.Default().Snapshot()[name].(int64)
	if !ok {
		t.Fatalf("counter %q not registered", name)
	}
	return v
}

// TestPrecomputeMatchesDirect is the end-to-end contract of the
// offline/online split: a precomputed execution returns the identical
// result through the identical online step sequence, every plan-primed
// step's online traffic lands exactly on EstOnlineBytes, and — for a
// fully-primed (single-survivor) query — nothing falls back: zero pool
// and zero circuit-queue misses.
func TestPrecomputeMatchesDirect(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	single, singleRels := example11Query(rng, 12, 18)
	multi, multiRels := multiNodeQuery(rng)
	raw, rawRels := example11Query(rng, 9, 14)
	raw.NoLocalOptimizations = true

	for _, tc := range []struct {
		name       string
		q          *Query
		rels       []*relation.Relation
		fullPrimed bool // every online step with OT/circuit work is plan-primed
	}{
		{"single-survivor", single, singleRels, true},
		{"multi-node", multi, multiRels, false},
		{"no-local-opt", raw, rawRels, true},
	} {
		t.Run(tc.name, func(t *testing.T) {
			want, directTr, aerr, berr := runTraced(context.Background(), tc.q, tc.rels)
			if aerr != nil || berr != nil {
				t.Fatalf("direct run: alice %v, bob %v", aerr, berr)
			}

			obs.Enable()
			defer obs.Disable()
			poolMiss0 := counterValue(t, "secyan_ot_pool_miss_total")
			circMiss0 := counterValue(t, "secyan_mpc_precircuit_miss_total")
			circHit0 := counterValue(t, "secyan_mpc_precircuit_hit_total")

			got, offTr, onTr := runPrecomputed(t, tc.q, tc.rels)
			if !relsEqual(got, want) {
				t.Fatalf("precomputed result differs:\ngot  %v %v\nwant %v %v",
					got.Tuples, got.Annot, want.Tuples, want.Annot)
			}

			// The online trace is, step for step, the direct trace: same
			// operators over the same nodes and sizes in the same order.
			if len(onTr.Steps) != len(directTr.Steps) {
				t.Fatalf("online trace has %d steps, direct has %d", len(onTr.Steps), len(directTr.Steps))
			}
			for i := range onTr.Steps {
				os, ds := onTr.Steps[i], directTr.Steps[i]
				if os.Phase != ds.Phase || os.Op != ds.Op || os.Node != ds.Node || os.N != ds.N {
					t.Fatalf("step %d: online %s/%s[%s] N=%d, direct %s/%s[%s] N=%d",
						i, os.Phase, os.Op, os.Node, os.N, ds.Phase, ds.Op, ds.Node, ds.N)
				}
			}

			// Offline trace: each recorded step moves exactly its
			// EstOfflineBytes (base OTs or correction matrices).
			for i, s := range offTr.Steps {
				if s.Phase != "offline" {
					t.Fatalf("offline step %d has phase %q", i, s.Phase)
				}
				if s.Bytes != s.EstBytes {
					t.Errorf("offline step %d (%s[%s]): measured %d bytes, estimate %d",
						i, s.Op, s.Node, s.Bytes, s.EstBytes)
				}
			}

			// Online trace: re-Explain with the true output size; every step
			// must land byte-exactly on its EstOnlineBytes (join-phase steps
			// have no demands, so there EstOnlineBytes == EstBytes, which the
			// plan/trace test already pins for direct runs).
			out := 0
			for _, s := range onTr.Steps {
				if s.Op == "local-join" {
					out = s.N
				}
			}
			plan, err := Explain(tc.q, testRing.Bits, out)
			if err != nil {
				t.Fatal(err)
			}
			if len(plan.Steps) != len(onTr.Steps) {
				t.Fatalf("plan has %d steps, online trace has %d", len(plan.Steps), len(onTr.Steps))
			}
			var offTotal int64
			for i := range plan.Steps {
				ps, ts := &plan.Steps[i], onTr.Steps[i]
				if ts.Bytes != ps.EstOnlineBytes {
					t.Errorf("step %d (%s/%s[%s]): online measured %d bytes, EstOnlineBytes %d",
						i, ps.Phase, ps.Op, ps.Node, ts.Bytes, ps.EstOnlineBytes)
				}
				offTotal += ps.EstOfflineBytes
			}
			if got := offTr.TotalBytes(); got != offTotal {
				t.Errorf("offline total: measured %d, plan EstOfflineBytes %d", got, offTotal)
			}
			if plan.EstOfflineBytes != offTotal || plan.EstOnlineBytes <= 0 {
				t.Errorf("plan totals inconsistent: offline %d (sum %d), online %d",
					plan.EstOfflineBytes, offTotal, plan.EstOnlineBytes)
			}

			if tc.fullPrimed {
				if d := counterValue(t, "secyan_ot_pool_miss_total") - poolMiss0; d != 0 {
					t.Errorf("fully-primed run recorded %d OT pool misses", d)
				}
				if d := counterValue(t, "secyan_mpc_precircuit_miss_total") - circMiss0; d != 0 {
					t.Errorf("fully-primed run recorded %d circuit-queue misses", d)
				}
			}
			if d := counterValue(t, "secyan_mpc_precircuit_hit_total") - circHit0; d <= 0 {
				t.Errorf("precomputed run served no circuits from the queue")
			}
		})
	}
}

// TestPrecomputeFallback runs a query different from the precomputed one:
// the first mismatch drops the staged material and the direct protocols
// must still produce the correct result.
func TestPrecomputeFallback(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	primedQ, primedRels := multiNodeQuery(rng)
	runQ, runRels := example11Query(rng, 12, 18)

	want, _, aerr, berr := runTraced(context.Background(), runQ, runRels)
	if aerr != nil || berr != nil {
		t.Fatalf("direct run: alice %v, bob %v", aerr, berr)
	}

	alice, bob := mpc.Pair(testRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	ctx := context.Background()

	offErr := make(chan error, 1)
	go func() {
		_, err := Precompute(ctx, bob, splitQuery(primedQ, primedRels, mpc.Bob))
		if err != nil {
			bob.Conn.Close()
		}
		offErr <- err
	}()
	if _, err := Precompute(ctx, alice, splitQuery(primedQ, primedRels, mpc.Alice)); err != nil {
		t.Fatalf("alice precompute: %v", err)
	}
	if berr := <-offErr; berr != nil {
		t.Fatalf("bob precompute: %v", berr)
	}

	onErr := make(chan error, 1)
	go func() {
		_, _, err := RunContext(ctx, bob, splitQuery(runQ, runRels, mpc.Bob))
		if err != nil {
			bob.Conn.Close()
		}
		onErr <- err
	}()
	got, _, err := RunContext(ctx, alice, splitQuery(runQ, runRels, mpc.Alice))
	if err != nil {
		t.Fatalf("alice run: %v", err)
	}
	if berr := <-onErr; berr != nil {
		t.Fatalf("bob run: %v", berr)
	}
	if !relsEqual(got, want) {
		t.Fatalf("fallback result differs:\ngot  %v %v\nwant %v %v",
			got.Tuples, got.Annot, want.Tuples, want.Annot)
	}
}

// TestClearPrecomputed drops staged material on both parties; the
// subsequent run must take the direct path and still be correct.
func TestClearPrecomputed(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	q, rels := example11Query(rng, 12, 18)

	want, _, aerr, berr := runTraced(context.Background(), q, rels)
	if aerr != nil || berr != nil {
		t.Fatalf("direct run: alice %v, bob %v", aerr, berr)
	}

	alice, bob := mpc.Pair(testRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	ctx := context.Background()

	offErr := make(chan error, 1)
	go func() {
		_, err := Precompute(ctx, bob, splitQuery(q, rels, mpc.Bob))
		offErr <- err
	}()
	if _, err := Precompute(ctx, alice, splitQuery(q, rels, mpc.Alice)); err != nil {
		t.Fatalf("alice precompute: %v", err)
	}
	if berr := <-offErr; berr != nil {
		t.Fatalf("bob precompute: %v", berr)
	}
	alice.ClearPrecomputed()
	bob.ClearPrecomputed()

	onErr := make(chan error, 1)
	go func() {
		_, _, err := RunContext(ctx, bob, splitQuery(q, rels, mpc.Bob))
		if err != nil {
			bob.Conn.Close()
		}
		onErr <- err
	}()
	got, _, err := RunContext(ctx, alice, splitQuery(q, rels, mpc.Alice))
	if err != nil {
		t.Fatalf("alice run: %v", err)
	}
	if berr := <-onErr; berr != nil {
		t.Fatalf("bob run: %v", berr)
	}
	if !relsEqual(got, want) {
		t.Fatal("post-clear result differs from direct run")
	}
}
