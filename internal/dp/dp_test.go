package dp

import (
	"math"
	"testing"

	"secyan/internal/core"
	"secyan/internal/mpc"
	"secyan/internal/prf"
	"secyan/internal/relation"
	"secyan/internal/share"
)

func TestMaxMultiplicity(t *testing.T) {
	r := relation.New(relation.MustSchema("k", "x"))
	r.Append([]uint64{1, 10}, 1)
	r.Append([]uint64{1, 11}, 1)
	r.Append([]uint64{1, 12}, 1)
	r.Append([]uint64{2, 13}, 1)
	r.Append([]uint64{3, 14}, 0) // zero-annotated: ignored
	m, err := MaxMultiplicity(r, []relation.Attr{"k"})
	if err != nil || m != 3 {
		t.Fatalf("max multiplicity: %d, %v", m, err)
	}
	if _, err := MaxMultiplicity(r, []relation.Attr{"zzz"}); err == nil {
		t.Fatal("unknown attr accepted")
	}
}

func TestSensitivityProduct(t *testing.T) {
	alice, bob := mpc.Pair(share.Ring{Bits: 32})
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	da, db, err := mpc.Run2PC(alice, bob,
		func(p *mpc.Party) (uint64, error) { return SensitivityProduct(p, 6) },
		func(p *mpc.Party) (uint64, error) { return SensitivityProduct(p, 7) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if da != 42 || db != 42 {
		t.Fatalf("Δ: alice %d, bob %d, want 42", da, db)
	}
}

func TestSampleLaplaceStatistics(t *testing.T) {
	g := prf.NewPRG(prf.Seed{5})
	const n = 20000
	const scale = 10.0
	var sum, absSum float64
	for i := 0; i < n; i++ {
		x := float64(SampleLaplace(g, scale, 32))
		sum += x
		absSum += math.Abs(x)
	}
	mean := sum / n
	meanAbs := absSum / n
	if math.Abs(mean) > 1 {
		t.Fatalf("laplace mean %f too far from 0", mean)
	}
	// E|X| = scale for Laplace.
	if meanAbs < 8 || meanAbs > 12 {
		t.Fatalf("laplace E|X| = %f, want ≈ %f", meanAbs, scale)
	}
	// Clamping.
	if x := SampleLaplace(g, 1e30, 32); x > 1<<30 || x < -(1<<30) {
		t.Fatalf("clamp failed: %d", x)
	}
}

// TestNoisyRevealJoinCount runs a small join-count query end to end with
// DP noise, checking the revealed value lies near the true count.
func TestNoisyRevealJoinCount(t *testing.T) {
	r1 := relation.New(relation.MustSchema("k"))
	r2 := relation.New(relation.MustSchema("k"))
	for i := 0; i < 30; i++ {
		r1.Append([]uint64{uint64(i % 10)}, 1)
		r2.Append([]uint64{uint64(i % 10)}, 1)
	}
	// True join count: every k in 0..9 has 3 × 3 pairs = 90.
	const trueCount = 90
	const epsilon = 2.0

	alice, bob := mpc.Pair(share.Ring{Bits: 32})
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	run := func(p *mpc.Party) (uint64, error) {
		var mine *relation.Relation
		if p.Role == mpc.Alice {
			mine = r1
		} else {
			mine = r2
		}
		q := &core.Query{
			Inputs: []core.Input{
				{Name: "r1", Owner: mpc.Alice, Schema: r1.Schema, N: r1.Len()},
				{Name: "r2", Owner: mpc.Bob, Schema: r2.Schema, N: r2.Len()},
			},
		}
		if p.Role == mpc.Alice {
			q.Inputs[0].Rel = mine
		} else {
			q.Inputs[1].Rel = mine
		}
		res, err := core.RunShared(p, q)
		if err != nil {
			return 0, err
		}
		myMax, err := MaxMultiplicity(mine, []relation.Attr{"k"})
		if err != nil {
			return 0, err
		}
		delta, err := SensitivityProduct(p, myMax)
		if err != nil {
			return 0, err
		}
		if delta != 9 {
			t.Errorf("Δ = %d, want 9 (3 × 3)", delta)
		}
		return NoisyReveal(p, res, delta, epsilon)
	}
	got, _, err := mpc.Run2PC(alice, bob, run, run)
	if err != nil {
		t.Fatal(err)
	}
	// With scale Δ/ε = 4.5, being 200 away is ~e^-44 unlikely; treat the
	// value as int32 to handle negative noise wrapping the ring.
	diff := int64(int32(uint32(got))) - trueCount
	if diff < -200 || diff > 200 {
		t.Fatalf("noisy count %d too far from %d", got, trueCount)
	}
	if diff == 0 {
		t.Log("noise happened to be zero (possible, but rare)")
	}
}

func TestNoisyRevealValidation(t *testing.T) {
	alice, _ := mpc.Pair(share.Ring{Bits: 32})
	defer alice.Conn.Close()
	res := &core.SharedResult{Single: &core.SharedRelation{
		Schema: relation.MustSchema("g"), N: 1, Annot: []uint64{0},
	}}
	if _, err := NoisyReveal(alice, res, 1, 1.0); err == nil {
		t.Fatal("grouped result accepted")
	}
	scalar := &core.SharedResult{Single: &core.SharedRelation{N: 1, Annot: []uint64{0}}}
	if _, err := NoisyReveal(alice, scalar, 1, 0); err == nil {
		t.Fatal("epsilon 0 accepted")
	}
}
