// Package dp implements the differential-privacy extension of paper §7
// ("Protecting privacy against query results"): when the revealed
// aggregates themselves are sensitive, Laplace noise calibrated to the
// query's sensitivity is added *inside the protocol*, so that Alice only
// ever sees the noisy results.
//
// Following the paper, the sensitivity Δ of a join-count query is
// computed from the maximum multiplicity of the join values in each
// relation (Johnson, Near and Song 2018, reference [19]): the parties
// find their local maxima, a small garbled circuit multiplies them into
// Δ without revealing either side's value, and Bob adds
// Laplace(Δ/ε)-distributed noise to his share of the result before it is
// revealed — the noise rides the additive secret sharing for free.
package dp

import (
	"fmt"
	"math"

	"secyan/internal/core"
	"secyan/internal/gc"
	"secyan/internal/mpc"
	"secyan/internal/prf"
	"secyan/internal/relation"
)

// MaxMultiplicity returns the largest number of tuples of r sharing one
// value combination on the given attributes — the per-relation quantity
// feeding the join-count sensitivity bound.
func MaxMultiplicity(r *relation.Relation, attrs []relation.Attr) (uint64, error) {
	cols, err := r.Schema.Positions(attrs)
	if err != nil {
		return 0, err
	}
	counts := map[string]uint64{}
	var max uint64
	for i := range r.Tuples {
		if r.Annot[i] == 0 || r.IsDummy(i) {
			continue
		}
		key := ""
		for _, c := range cols {
			key += fmt.Sprint(r.Tuples[i][c], "|")
		}
		counts[key]++
		if counts[key] > max {
			max = counts[key]
		}
	}
	return max, nil
}

// SensitivityProduct multiplies each party's private multiplicity bound
// inside a garbled circuit and reveals the product Δ to both parties.
// Revealing Δ is standard practice for Laplace calibration; parties who
// consider even Δ sensitive can substitute a public upper bound.
func SensitivityProduct(p *mpc.Party, myMax uint64) (uint64, error) {
	ell := p.Ring.Bits
	b := gc.NewBuilder()
	x := b.EvalInputWord(ell)
	y := b.PrivateWord(ell)
	prod := b.Mul(x, b.XORGWord(b.ConstWord(0, ell), y))
	b.OutputWordToEval(prod)
	b.OutputWordToGarbler(prod)
	c := b.Build()

	// Alice evaluates, Bob garbles; each feeds its own bound.
	var out []bool
	var err error
	if p.Role == mpc.Alice {
		out, err = p.RunCircuit(c, gc.AppendBits(nil, p.Ring.Mask(myMax), ell), nil, mpc.Bob)
	} else {
		out, err = p.RunCircuit(c, nil, gc.AppendBits(nil, p.Ring.Mask(myMax), ell), mpc.Bob)
	}
	if err != nil {
		return 0, err
	}
	return p.Ring.Mask(gc.UintOfBits(out)), nil
}

// SampleLaplace draws ⌊Laplace(0, scale)⌉ using inverse-transform
// sampling from g. The result is clamped to ±2^(bits-2) so the noise
// cannot wrap the ring more than once.
func SampleLaplace(g *prf.PRG, scale float64, bits int) int64 {
	// u uniform in (-0.5, 0.5); X = -scale * sign(u) * ln(1 - 2|u|).
	u := (float64(g.Uint64()>>11)/float64(1<<53) - 0.5)
	if u == 0 {
		return 0
	}
	sign := 1.0
	if u < 0 {
		sign = -1.0
	}
	x := -scale * sign * math.Log(1-2*math.Abs(u))
	limit := float64(uint64(1) << uint(bits-2))
	if x > limit {
		x = limit
	}
	if x < -limit {
		x = -limit
	}
	return int64(math.Round(x))
}

// NoisyReveal adds Laplace(Δ/ε) noise to a *scalar* aggregate (a query
// with empty output attributes, e.g. a join count — the case the paper's
// sensitivity measure covers) before revealing it to Alice: Bob shifts
// his additive share of the aggregate by the noise, so the reveal step is
// unchanged and Alice never sees the exact value (paper §7). The
// aggregate sits at the last position of the shared result by the public
// structure of the oblivious aggregation, so shifting exactly that share
// is sound and leaks nothing. Returns the noisy value to Alice.
func NoisyReveal(p *mpc.Party, res *core.SharedResult, delta uint64, epsilon float64) (uint64, error) {
	if epsilon <= 0 {
		return 0, fmt.Errorf("dp: epsilon must be positive, got %v", epsilon)
	}
	if res.Single == nil || len(res.Single.Schema.Attrs) != 0 {
		return 0, fmt.Errorf("dp: NoisyReveal supports scalar aggregates (empty output attributes) only")
	}
	if res.N() == 0 {
		return 0, fmt.Errorf("dp: empty result")
	}
	if p.Role == mpc.Bob {
		scale := float64(delta) / epsilon
		noise := SampleLaplace(p.PRG, scale, p.Ring.Bits)
		last := res.N() - 1
		res.Single.Annot[last] = p.Ring.Add(res.Single.Annot[last], p.Ring.Mask(uint64(noise)))
	}
	rel, err := res.Reveal(p, nil)
	if err != nil || p.Role != mpc.Alice {
		return 0, err
	}
	if rel.Len() == 0 {
		// The noise can cancel the aggregate to exactly zero, in which
		// case the reveal suppresses the row; report zero.
		return 0, nil
	}
	return rel.Annot[0], nil
}
