// Package bifrost implements a simplified two-party secure join in the
// style of Bifrost (see PAPERS.md): both parties simple-hash their join
// keys into the same bin space under one public hash function, and a
// single garbled circuit compares the receiver's R slots per bin against
// the sender's L entries per bin, producing additive shares of the
// matched payload (or 0) per receiver slot.
//
// The construction trades the cuckoo machinery of circuit-phasing PSI
// (internal/psi) for a larger comparison circuit: with only one hash
// function there is no eviction, so the receiver pads every bin to a
// load bound R instead of holding one item per bin, and the circuit
// grows to B·R·L comparisons. That loses asymptotically but wins at
// small cardinalities, where PSI's fixed bin expansion and three-way
// hashing dominate. Its precondition is Bifrost's: the *sender's* join
// keys must be unique, so that at most one sender entry matches any
// receiver slot and payload shares can be summed without multiplicity
// bookkeeping. No intersection indicator is produced — the caller's
// annotation algebra treats "no match" and "payload 0" identically.
package bifrost

import (
	"fmt"

	"secyan/internal/cuckoo"
	"secyan/internal/gc"
	"secyan/internal/mpc"
	"secyan/internal/obs"
	"secyan/internal/prf"
)

var (
	mRuns     = obs.NewCounter("secyan_bifrost_runs_total", "Bifrost join executions (receiver+sender sides of this process).")
	mSlots    = obs.NewHistogram("secyan_bifrost_slots", "Receiver slot count B·R per execution.")
	mElements = obs.NewCounter("secyan_bifrost_elements_total", "Real elements fed into bifrost executions (both sides).")
)

// Sigma is the statistical security parameter bounding both bin-load
// tails (same posture as psi.Sigma: overflow probability < 2^-σ).
const Sigma = 40

// MaxElement matches the PSI element domain: one bit is reserved for the
// dummy tag, and callers already confine values to 62 bits.
const MaxElement = uint64(1)<<62 - 1

// keyBits is the width of composed keys inside the comparison circuit.
const keyBits = 64

// Composed real keys are even (v<<1); the dummies are odd and distinct,
// so no dummy slot ever matches anything.
const (
	receiverDummyKey = ^uint64(0)
	senderDummyKey   = uint64(1)
)

// Compose builds the circuit key for element v.
func Compose(v uint64) (uint64, error) {
	if v > MaxElement {
		return 0, fmt.Errorf("bifrost: element %d exceeds the 62-bit domain", v)
	}
	return v << 1, nil
}

// Params are the public dimensions of one execution; both parties derive
// identical Params from the public set sizes.
type Params struct {
	M int // receiver set size
	N int // sender set size
	B int // bins
	R int // receiver per-bin capacity
	L int // sender per-bin capacity
}

// binGrid is the candidate bin-count grid NewParams searches, as
// multipliers of the receiver set size in eighths (m/8 … 2m). A small
// grid keeps Params deterministic and cheap while letting the load
// bounds trade against bin count.
var binGrid = []int{1, 2, 4, 8, 12, 16}

// NewParams computes the public parameters for set sizes m (receiver)
// and n (sender): the bin count from a small grid minimizing the
// comparison-circuit work B·R·L, with both load bounds set by the
// σ-tail of simple hashing.
func NewParams(m, n int) Params {
	if m <= 0 || n <= 0 {
		return Params{M: m, N: n, B: 1, R: maxInt(m, 1), L: maxInt(n, 1)}
	}
	best := Params{M: m, N: n}
	for _, g := range binGrid {
		b := maxInt((m*g+7)/8, 1)
		cand := Params{M: m, N: n, B: b,
			R: cuckoo.MaxBinLoad(m, b, Sigma),
			L: cuckoo.MaxBinLoad(n, b, Sigma)}
		if best.B == 0 || cand.work() < best.work() {
			best = cand
		}
	}
	return best
}

func (pr Params) work() int { return pr.B * pr.R * pr.L }

// Slots returns the number of receiver slots B·R, the length of both
// parties' PayShares.
func (pr Params) Slots() int { return pr.B * pr.R }

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

// Result is one party's output: per receiver slot, an additive share of
// the matched payload (0 when no match). For the receiver, SlotOf maps
// her raw elements to their slots.
type Result struct {
	Params    Params
	PayShares []uint64
	SlotOf    map[uint64]int // receiver side only
}

// buildCircuit constructs the batched comparison circuit shared by both
// parties. Per bin: the sender's L keys and payloads enter as
// garbler-private constants; for each of the receiver's R slots, the
// evaluator inputs her composed key, the payloads of matching sender
// entries are summed (at most one matches, by the uniqueness
// precondition), and the sender's mask r enters as a regular garbler
// input. Output per slot, revealed to the evaluator: pay - r.
func buildCircuit(pr Params, ell int) *gc.Circuit {
	b := gc.NewBuilder()
	for bin := 0; bin < pr.B; bin++ {
		ykeys := make([][]gc.PBit, pr.L)
		ypays := make([][]gc.PBit, pr.L)
		for j := 0; j < pr.L; j++ {
			ykeys[j] = b.PrivateWord(keyBits)
			ypays[j] = b.PrivateWord(ell)
		}
		for r := 0; r < pr.R; r++ {
			akey := b.EvalInputWord(keyBits)
			var pay gc.Word
			for j := 0; j < pr.L; j++ {
				masked := b.ANDGWordBit(ypays[j], b.EqPrivate(akey, ykeys[j]))
				if j == 0 {
					pay = masked
				} else {
					pay = b.Add(pay, masked)
				}
			}
			rPay := b.GarblerInputWord(ell)
			b.OutputWordToEval(b.Sub(pay, rPay))
		}
	}
	return b.Build()
}

// BuildCircuitForEstimate exposes the comparison circuit to the plan
// compiler's ahead-of-time garbling.
func BuildCircuitForEstimate(pr Params, ell int) *gc.Circuit { return buildCircuit(pr, ell) }

// receiverBins places the receiver's distinct elements into bins of
// capacity R under seed, retrying is the caller's concern (the σ-tail
// makes overflow a <2^-σ event). It returns per-element slots, or false
// on overflow.
func receiverBins(seed prf.Seed, pr Params, xs []uint64) (map[uint64]int, bool) {
	load := make([]int, pr.B)
	slot := make(map[uint64]int, len(xs))
	for _, x := range xs {
		bin := cuckoo.BinOf(seed, pr.B, x, 0)
		if load[bin] >= pr.R {
			return nil, false
		}
		slot[x] = bin*pr.R + load[bin]
		load[bin]++
	}
	return slot, true
}

// maxSeedAttempts bounds the receiver's rehash loop, mirroring the
// cuckoo builder's posture: with overflow probability < 2^-σ per seed,
// running out is unreachable in practice.
const maxSeedAttempts = 32

// RunReceiver executes the join as the payload receiver with distinct
// elements xs; nSender is the public size of the sender's set. The
// receiver draws the hash seed (rehashing on the <2^-σ overflow event)
// and sends it, mirroring psi.RunReceiver.
func RunReceiver(p *mpc.Party, xs []uint64, nSender int) (*Result, error) {
	pr := NewParams(len(xs), nSender)
	sp := obs.Begin("bifrost", "bifrost.recv")
	defer sp.EndN(int64(pr.Slots()))
	mRuns.Inc()
	mElements.Add(int64(len(xs)))
	mSlots.Observe(int64(pr.Slots()))
	seen := make(map[uint64]bool, len(xs))
	for _, x := range xs {
		if seen[x] {
			return nil, fmt.Errorf("bifrost: receiver element %d duplicated", x)
		}
		seen[x] = true
	}
	var seed prf.Seed
	var slotOf map[uint64]int
	ok := false
	for attempt := 0; attempt < maxSeedAttempts && !ok; attempt++ {
		seed = p.PRG.Seed()
		slotOf, ok = receiverBins(seed, pr, xs)
	}
	if !ok {
		return nil, fmt.Errorf("bifrost: receiver bins exceeded load bound %d after %d seeds", pr.R, maxSeedAttempts)
	}
	if err := p.Conn.Send(seed[:]); err != nil {
		return nil, err
	}
	akeys := make([]uint64, pr.Slots())
	for i := range akeys {
		akeys[i] = receiverDummyKey
	}
	for x, s := range slotOf {
		k, err := Compose(x)
		if err != nil {
			return nil, err
		}
		akeys[s] = k
	}
	ell := p.Ring.Bits
	circ := buildCircuit(pr, ell)
	evalBits := make([]bool, 0, pr.Slots()*keyBits)
	for _, k := range akeys {
		evalBits = gc.AppendBits(evalBits, k, keyBits)
	}
	out, err := p.RunCircuit(circ, evalBits, nil, p.Role.Other())
	if err != nil {
		return nil, err
	}
	res := &Result{Params: pr, SlotOf: slotOf, PayShares: make([]uint64, pr.Slots())}
	for s := 0; s < pr.Slots(); s++ {
		res.PayShares[s] = gc.UintOfBits(out[s*ell : (s+1)*ell])
	}
	return res, nil
}

// RunSender executes the join as the payload sender with unique elements
// ys and aligned plaintext payloads; mReceiver is the public size of the
// receiver's set. Key uniqueness is the protocol's precondition and is
// enforced here.
func RunSender(p *mpc.Party, ys, payloads []uint64, mReceiver int) (*Result, error) {
	if len(ys) != len(payloads) {
		return nil, fmt.Errorf("bifrost: %d elements with %d payloads", len(ys), len(payloads))
	}
	pr := NewParams(mReceiver, len(ys))
	sp := obs.Begin("bifrost", "bifrost.send")
	defer sp.EndN(int64(pr.Slots()))
	mRuns.Inc()
	mElements.Add(int64(len(ys)))
	mSlots.Observe(int64(pr.Slots()))
	seedMsg, err := p.Conn.Recv()
	if err != nil {
		return nil, err
	}
	if len(seedMsg) != prf.SeedSize {
		return nil, fmt.Errorf("bifrost: bad hash seed length %d", len(seedMsg))
	}
	var seed prf.Seed
	copy(seed[:], seedMsg)

	keys := make([][]uint64, pr.B)
	pays := make([][]uint64, pr.B)
	seen := make(map[uint64]bool, len(ys))
	for j, y := range ys {
		if seen[y] {
			return nil, fmt.Errorf("bifrost: sender key %d duplicated (unique-key precondition)", y)
		}
		seen[y] = true
		k, err := Compose(y)
		if err != nil {
			return nil, err
		}
		bin := cuckoo.BinOf(seed, pr.B, y, 0)
		if len(keys[bin]) >= pr.L {
			// Statistical failure (probability < 2^-σ), surfaced as an error
			// like psi.senderBins.
			return nil, fmt.Errorf("bifrost: sender bin %d exceeded load bound %d", bin, pr.L)
		}
		keys[bin] = append(keys[bin], k)
		pays[bin] = append(pays[bin], payloads[j])
	}
	for bin := 0; bin < pr.B; bin++ {
		for len(keys[bin]) < pr.L {
			keys[bin] = append(keys[bin], senderDummyKey)
			pays[bin] = append(pays[bin], 0)
		}
	}

	ell := p.Ring.Bits
	circ := buildCircuit(pr, ell)
	res := &Result{Params: pr, PayShares: make([]uint64, pr.Slots())}
	privBits := make([]bool, 0, pr.B*pr.L*(keyBits+ell))
	garblerBits := make([]bool, 0, pr.Slots()*ell)
	for bin := 0; bin < pr.B; bin++ {
		for j := 0; j < pr.L; j++ {
			privBits = gc.AppendBits(privBits, keys[bin][j], keyBits)
			privBits = gc.AppendBits(privBits, p.Ring.Mask(pays[bin][j]), ell)
		}
		for r := 0; r < pr.R; r++ {
			rPay := p.Ring.Random(p.PRG)
			res.PayShares[bin*pr.R+r] = rPay
			garblerBits = gc.AppendBits(garblerBits, rPay, ell)
		}
	}
	if _, err := p.RunCircuit(circ, garblerBits, privBits, p.Role); err != nil {
		return nil, err
	}
	return res, nil
}
