package bifrost

import (
	"secyan/internal/gc"
	"secyan/internal/prf"
)

// Wire-cost predictor for the bifrost join, used by the plan compiler in
// internal/core. It composes the hash-seed message with the comparison
// circuit, whose dimensions are interpolated over the bin count — the
// per-bin gadget is fixed by R and L, so Dims is affine in B, exactly as
// in psi's cost model. cost_test.go pins it to measured traffic.

// circuitDims interpolates the comparison-circuit dimensions in the bin
// count with the per-bin loads R, L (and every other parameter) fixed.
func circuitDims(pr Params, ell int) gc.Dims {
	return gc.InterpolateDims(func(b int) *gc.Circuit {
		probe := pr
		probe.B = b
		return buildCircuit(probe, ell)
	}, pr.B)
}

// AlignCost returns the total bytes (both directions) of one
// RunReceiver/RunSender execution for public set sizes m (receiver) and
// n (sender) with ell-bit payloads, excluding one-time base-OT setup.
// The OEP the caller runs to scatter slots onto its tuples is priced
// separately (oep.Cost(Slots, m, false)).
func AlignCost(m, n, ell int) int64 {
	pr := NewParams(m, n)
	return int64(prf.SeedSize) + circuitDims(pr, ell).MessageCost()
}
