package bifrost

import (
	"math/rand"
	"testing"

	"secyan/internal/mpc"
	"secyan/internal/share"
)

// makeSets builds distinct X and unique Y with a planted intersection.
func makeSets(rng *rand.Rand, m, n, common int) (xs, ys []uint64) {
	used := map[uint64]bool{}
	fresh := func() uint64 {
		for {
			v := rng.Uint64() & MaxElement
			if !used[v] {
				used[v] = true
				return v
			}
		}
	}
	for i := 0; i < common; i++ {
		v := fresh()
		xs = append(xs, v)
		ys = append(ys, v)
	}
	for len(xs) < m {
		xs = append(xs, fresh())
	}
	for len(ys) < n {
		ys = append(ys, fresh())
	}
	rng.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	rng.Shuffle(len(ys), func(i, j int) { ys[i], ys[j] = ys[j], ys[i] })
	return xs, ys
}

func runJoin(t *testing.T, ring share.Ring, xs, ys, payloads []uint64) (ra, rb *Result) {
	t.Helper()
	alice, bob := mpc.Pair(ring)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	ra, rb, err := mpc.Run2PC(alice, bob,
		func(p *mpc.Party) (*Result, error) { return RunReceiver(p, xs, len(ys)) },
		func(p *mpc.Party) (*Result, error) { return RunSender(p, ys, payloads, len(xs)) },
	)
	if err != nil {
		t.Fatal(err)
	}
	return ra, rb
}

func TestJoinCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	ring := share.Ring{Bits: 32}
	for _, tc := range []struct{ m, n, common int }{
		{1, 1, 1}, {1, 1, 0}, {10, 10, 5}, {30, 20, 7}, {5, 40, 3}, {40, 5, 2},
	} {
		xs, ys := makeSets(rng, tc.m, tc.n, tc.common)
		payloads := make([]uint64, len(ys))
		for i := range payloads {
			payloads[i] = uint64(rng.Intn(1 << 20))
		}
		ra, rb := runJoin(t, ring, xs, ys, payloads)
		want := map[uint64]uint64{}
		for j, y := range ys {
			want[y] = payloads[j]
		}
		if len(ra.PayShares) != ra.Params.Slots() || len(rb.PayShares) != ra.Params.Slots() {
			t.Fatalf("case %+v: share lengths %d/%d, want %d", tc, len(ra.PayShares), len(rb.PayShares), ra.Params.Slots())
		}
		claimed := map[int]bool{}
		for _, x := range xs {
			s, ok := ra.SlotOf[x]
			if !ok {
				t.Fatalf("case %+v: element %d has no slot", tc, x)
			}
			if claimed[s] {
				t.Fatalf("case %+v: slot %d claimed twice", tc, s)
			}
			claimed[s] = true
			pay := ring.Combine(ra.PayShares[s], rb.PayShares[s])
			if pay != ring.Mask(want[x]) {
				t.Errorf("case %+v: element %d pay = %d, want %d", tc, x, pay, want[x])
			}
		}
		// Unclaimed (dummy) slots must share to zero.
		for s := 0; s < ra.Params.Slots(); s++ {
			if claimed[s] {
				continue
			}
			if pay := ring.Combine(ra.PayShares[s], rb.PayShares[s]); pay != 0 {
				t.Errorf("case %+v: dummy slot %d pay = %d, want 0", tc, s, pay)
			}
		}
	}
}

func TestSenderRejectsDuplicateKeys(t *testing.T) {
	ring := share.Ring{Bits: 32}
	alice, bob := mpc.Pair(ring)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	_, _, err := mpc.Run2PC(alice, bob,
		func(p *mpc.Party) (*Result, error) { return RunReceiver(p, []uint64{1, 2}, 3) },
		func(p *mpc.Party) (*Result, error) {
			return RunSender(p, []uint64{7, 7, 9}, []uint64{1, 2, 3}, 2)
		},
	)
	if err == nil {
		t.Fatal("duplicate sender keys accepted; the unique-key precondition must be enforced")
	}
}

func TestParamsLoadBoundsCoverSets(t *testing.T) {
	for _, tc := range []struct{ m, n int }{{1, 1}, {5, 40}, {40, 5}, {100, 100}, {1000, 50}} {
		pr := NewParams(tc.m, tc.n)
		if pr.B < 1 || pr.R < 1 || pr.L < 1 {
			t.Fatalf("NewParams(%d,%d) = %+v: degenerate dimension", tc.m, tc.n, pr)
		}
		if pr.B*pr.R < tc.m {
			t.Fatalf("NewParams(%d,%d) = %+v: receiver capacity %d < m", tc.m, tc.n, pr, pr.B*pr.R)
		}
		if pr.B*pr.L < tc.n {
			t.Fatalf("NewParams(%d,%d) = %+v: sender capacity %d < n", tc.m, tc.n, pr, pr.B*pr.L)
		}
	}
}

// TestAlignCostExact pins AlignCost to the measured traffic of real
// executions, the property the plan compiler's estimates rely on.
func TestAlignCostExact(t *testing.T) {
	ring := share.Ring{Bits: 32}
	rng := rand.New(rand.NewSource(17))
	for _, sz := range []struct{ m, n int }{{3, 4}, {10, 25}, {40, 17}} {
		xs, ys := makeSets(rng, sz.m, sz.n, 2)
		payloads := make([]uint64, sz.n)
		for i := range payloads {
			payloads[i] = uint64(rng.Intn(1000))
		}
		alice, bob := mpc.Pair(ring)
		warmOT(t, alice, bob)
		alice.Conn.ResetStats()
		bob.Conn.ResetStats()
		_, _, err := mpc.Run2PC(alice, bob,
			func(p *mpc.Party) (*Result, error) { return RunReceiver(p, xs, sz.n) },
			func(p *mpc.Party) (*Result, error) { return RunSender(p, ys, payloads, sz.m) },
		)
		if err != nil {
			t.Fatalf("m=%d n=%d: %v", sz.m, sz.n, err)
		}
		want := AlignCost(sz.m, sz.n, ring.Bits)
		if got := alice.Conn.Stats().TotalBytes(); got != want {
			t.Fatalf("m=%d n=%d moved %d bytes, predictor says %d", sz.m, sz.n, got, want)
		}
		alice.Conn.Close()
		bob.Conn.Close()
	}
}

// warmOT forces both OT-extension sessions into existence so measured
// traffic excludes one-time base-OT setup (same helper as psi's tests).
func warmOT(t *testing.T, alice, bob *mpc.Party) {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		if _, err := bob.OTReceiver(); err != nil {
			done <- err
			return
		}
		_, err := bob.OTSender()
		done <- err
	}()
	if _, err := alice.OTSender(); err != nil {
		t.Fatalf("alice OTSender: %v", err)
	}
	if _, err := alice.OTReceiver(); err != nil {
		t.Fatalf("alice OTReceiver: %v", err)
	}
	if err := <-done; err != nil {
		t.Fatalf("bob OT setup: %v", err)
	}
}
