package parallel

import (
	"sync/atomic"
	"testing"
)

// withWorkers pins the worker count for the duration of the test.
func withWorkers(t *testing.T, n int) {
	t.Helper()
	prev := SetWorkers(n)
	t.Cleanup(func() { SetWorkers(prev) })
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 7} {
		for _, n := range []int{0, 1, 2, 63, 64, 65, 1000} {
			for _, grain := range []int{1, 8, 100} {
				withWorkers(t, workers)
				hits := make([]int32, n)
				For(n, grain, func(lo, hi int) {
					if lo < 0 || hi > n || lo >= hi {
						t.Errorf("bad chunk [%d,%d) for n=%d", lo, hi, n)
						return
					}
					for i := lo; i < hi; i++ {
						atomic.AddInt32(&hits[i], 1)
					}
				})
				for i, h := range hits {
					if h != 1 {
						t.Fatalf("workers=%d n=%d grain=%d: index %d visited %d times", workers, n, grain, i, h)
					}
				}
			}
		}
	}
}

func TestForChunkBoundariesIndependentOfWorkerCount(t *testing.T) {
	// Kernels rely on chunk boundaries being a pure function of
	// (n, grain, Workers()) so that per-chunk state never changes results.
	// The output produced index-by-index must match serial regardless.
	const n = 513
	want := make([]int, n)
	withWorkers(t, 1)
	For(n, 7, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			want[i] = i * i
		}
	})
	for _, workers := range []int{2, 4, 16} {
		withWorkers(t, workers)
		got := make([]int, n)
		For(n, 7, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				got[i] = i * i
			}
		})
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: index %d = %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestSetWorkersRoundTrip(t *testing.T) {
	prev := SetWorkers(3)
	defer SetWorkers(prev)
	if Workers() != 3 {
		t.Fatalf("Workers() = %d, want 3", Workers())
	}
	if got := SetWorkers(0); got != 3 {
		t.Fatalf("SetWorkers returned %d, want 3", got)
	}
	if Workers() < 1 {
		t.Fatalf("Workers() = %d after unpin, want >= 1", Workers())
	}
}

func TestForSerialRunsOnCallingGoroutine(t *testing.T) {
	withWorkers(t, 1)
	// A data race here (no synchronization) would be flagged by -race if
	// For used goroutines with one worker.
	x := 0
	For(100, 1, func(lo, hi int) { x += hi - lo })
	if x != 100 {
		t.Fatalf("x = %d, want 100", x)
	}
}
