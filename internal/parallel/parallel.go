// Package parallel provides the bounded worker pool behind every
// CPU-heavy crypto kernel in this repository: IKNP column expansion and
// per-OT padding, half-gates garbling and evaluation, and the bit-matrix
// transpose.
//
// The design constraint is transcript determinism: a protocol run must
// produce byte-for-byte identical wire messages at any worker count, so
// that parallelism never changes the measured communication numbers or
// the reproducibility of results. For guarantees this by construction —
// chunk boundaries depend only on (n, grain), never on worker count or
// scheduling, and kernels written against it assign each index a
// disjoint output region. Worker count only decides how many goroutines
// drain the chunk queue.
//
// The worker count defaults to runtime.GOMAXPROCS(0). It can be pinned
// process-wide with SetWorkers (used by the equivalence tests and the
// reproducible-benchmark runs documented in DESIGN.md) or via the
// SECYAN_WORKERS environment variable.
package parallel

import (
	"os"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"secyan/internal/obs"
)

// Worker-pool metrics. Busy time is the sum of per-chunk kernel time
// across all workers; span time is workers × wall time of each For
// call, so busy/span is the pool's utilization. All reads of the clock
// are gated on obs.Enabled, keeping the disabled path free.
var (
	mForCalls = obs.NewCounter("secyan_parallel_for_total", "parallel.For invocations.")
	mChunks   = obs.NewCounter("secyan_parallel_chunks_total", "Work chunks executed by the pool (serial fast-path counts one).")
	mBusyNs   = obs.NewCounter("secyan_parallel_busy_ns_total", "Nanoseconds workers spent inside kernels.")
	mSpanNs   = obs.NewCounter("secyan_parallel_span_ns_total", "Workers times wall nanoseconds of each For call; busy/span is pool occupancy.")
	mWorkers  = obs.NewGauge("secyan_parallel_workers", "Worker count of the most recent parallel For call.")
)

// override holds a pinned worker count; 0 means "use GOMAXPROCS".
var override atomic.Int32

func init() {
	if s := os.Getenv("SECYAN_WORKERS"); s != "" {
		if n, err := strconv.Atoi(s); err == nil && n > 0 {
			override.Store(int32(n))
		}
	}
}

// Workers reports the worker count For will use: the pinned value if one
// is set, otherwise runtime.GOMAXPROCS(0).
func Workers() int {
	if n := override.Load(); n > 0 {
		return int(n)
	}
	return runtime.GOMAXPROCS(0)
}

// SetWorkers pins the process-wide worker count. n <= 0 removes the pin,
// restoring the GOMAXPROCS default. It returns the previous pin (0 if
// none) so tests can restore it.
func SetWorkers(n int) int {
	if n < 0 {
		n = 0
	}
	return int(override.Swap(int32(n)))
}

// For executes fn over the index range [0, n), partitioned into
// contiguous chunks of at least grain indices. Chunk boundaries are a
// pure function of (n, grain, Workers()); fn(lo, hi) covers [lo, hi) and
// the union of all calls covers [0, n) exactly once. For returns when
// every chunk has completed.
//
// fn must be safe to call concurrently from multiple goroutines and must
// write only to state owned by its index range. With one worker (or when
// the range fits a single chunk) fn runs on the calling goroutine with
// no synchronization overhead.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	measured := obs.Enabled()
	var start time.Time
	if measured {
		mForCalls.Inc()
		start = time.Now()
	}
	workers := Workers()
	if workers == 1 || n <= grain {
		fn(0, n)
		if measured {
			d := time.Since(start).Nanoseconds()
			mChunks.Inc()
			mBusyNs.Add(d)
			mSpanNs.Add(d)
			mWorkers.Set(1)
		}
		return
	}
	// Aim for a few chunks per worker for load balance, but never chunks
	// smaller than grain (kernel work below grain is cheaper serial than
	// the handoff).
	size := (n + 4*workers - 1) / (4 * workers)
	if size < grain {
		size = grain
	}
	chunks := (n + size - 1) / size
	if chunks == 1 {
		fn(0, n)
		if measured {
			d := time.Since(start).Nanoseconds()
			mChunks.Inc()
			mBusyNs.Add(d)
			mSpanNs.Add(d)
			mWorkers.Set(1)
		}
		return
	}
	if workers > chunks {
		workers = chunks
	}
	var next atomic.Int64
	var busy atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				c := int(next.Add(1) - 1)
				if c >= chunks {
					return
				}
				lo := c * size
				hi := lo + size
				if hi > n {
					hi = n
				}
				if measured {
					t0 := time.Now()
					fn(lo, hi)
					busy.Add(time.Since(t0).Nanoseconds())
				} else {
					fn(lo, hi)
				}
			}
		}()
	}
	wg.Wait()
	if measured {
		mChunks.Add(int64(chunks))
		mBusyNs.Add(busy.Load())
		mSpanNs.Add(int64(workers) * time.Since(start).Nanoseconds())
		mWorkers.Set(int64(workers))
	}
}
