module secyan

go 1.22
