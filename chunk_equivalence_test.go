package secyan

import (
	"context"
	"fmt"
	"testing"

	"secyan/internal/parallel"
	"secyan/internal/relation"
)

// End-to-end chunk-invariance suite at the public API: the streaming
// executor must produce byte-identical transcripts for every chunk
// size, at every worker count, over every transport. Chunking is a
// local data-plane restructuring — it never moves a message boundary —
// so results, per-connection transport.Stats and session payload totals
// are all required to match the fully materialized baseline exactly.

type chunkOutcome struct {
	result         []string
	aStats, bStats Stats
}

// runExampleChunked runs the quickstart query once with the given
// process-wide chunk size, worker count and transport, capturing the
// canonicalized result and both endpoints' transport stats.
func runExampleChunked(t *testing.T, useTCP bool, workers, chunk int) chunkOutcome {
	t.Helper()
	prevW := parallel.SetWorkers(workers)
	defer parallel.SetWorkers(prevW)
	prevC := relation.SetDefaultChunkSize(chunk)
	defer relation.SetDefaultChunkSize(prevC)

	_, _, _, build := exampleQuery()
	var alice, bob *Party
	if useTCP {
		alice, bob = tcpParties(t)
	} else {
		alice, bob = LocalParties(DefaultRing)
		defer alice.Conn.Close()
		defer bob.Conn.Close()
	}
	res, _, err := Run2PC(alice, bob,
		func(p *Party) (*Relation, error) { return Run(p, build(Alice)) },
		func(p *Party) (*Relation, error) { return Run(p, build(Bob)) },
	)
	if err != nil {
		t.Fatalf("chunk=%d workers=%d tcp=%v: %v", chunk, workers, useTCP, err)
	}
	return chunkOutcome{resultKey(res), alice.Conn.Stats(), bob.Conn.Stats()}
}

func requireOutcomeEqual(t *testing.T, label string, got, want chunkOutcome) {
	t.Helper()
	if len(got.result) != len(want.result) {
		t.Fatalf("%s: %d result tuples, baseline %d", label, len(got.result), len(want.result))
	}
	for i := range want.result {
		if got.result[i] != want.result[i] {
			t.Fatalf("%s: result row %q, baseline %q", label, got.result[i], want.result[i])
		}
	}
	if got.aStats != want.aStats {
		t.Fatalf("%s: alice stats %+v, baseline %+v", label, got.aStats, want.aStats)
	}
	if got.bStats != want.bStats {
		t.Fatalf("%s: bob stats %+v, baseline %+v", label, got.bStats, want.bStats)
	}
}

// TestChunkedTranscriptEquivalence sweeps chunk sizes {1, 3, 64} against
// the unbounded (materialized) baseline over {pipe, TCP} × workers
// {1, 4}, and additionally pins each TCP baseline to the pipe baseline:
// one transcript for the whole matrix.
func TestChunkedTranscriptEquivalence(t *testing.T) {
	var pipeBase *chunkOutcome
	for _, tr := range []struct {
		name string
		tcp  bool
	}{{"pipe", false}, {"tcp", true}} {
		for _, workers := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/workers=%d", tr.name, workers), func(t *testing.T) {
				base := runExampleChunked(t, tr.tcp, workers, relation.Unbounded)
				if pipeBase == nil {
					pipeBase = &base
				} else {
					requireOutcomeEqual(t, "materialized baseline vs pipe/workers=1", base, *pipeBase)
				}
				for _, chunk := range []int{1, 3, 64} {
					got := runExampleChunked(t, tr.tcp, workers, chunk)
					requireOutcomeEqual(t, fmt.Sprintf("chunk=%d", chunk), got, base)
				}
			})
		}
	}
}

// TestSessionWithChunkSize pins the WithChunkSize session option: a
// chunked session returns the same results with the same per-stream
// payload totals as a materialized one, and its Explain records the
// configured chunk size in the plan.
func TestSessionWithChunkSize(t *testing.T) {
	_, _, _, build := exampleQuery()
	ctx := context.Background()

	run := func(chunk int) ([]string, Stats) {
		alice, bob := OpenLocal(WithChunkSize(chunk))
		defer alice.Close()
		defer bob.Close()
		done := make(chan error, 1)
		go func() {
			_, err := bob.Run(ctx, build(Bob))
			done <- err
		}()
		res, err := alice.Run(ctx, build(Alice))
		if err != nil {
			t.Fatalf("chunk=%d: alice: %v", chunk, err)
		}
		if err := <-done; err != nil {
			t.Fatalf("chunk=%d: bob: %v", chunk, err)
		}
		return resultKey(res), alice.Stats().Data
	}

	baseRes, baseData := run(relation.Unbounded)
	for _, chunk := range []int{1, 64} {
		res, data := run(chunk)
		for i := range baseRes {
			if res[i] != baseRes[i] {
				t.Fatalf("chunk=%d: result row %q, baseline %q", chunk, res[i], baseRes[i])
			}
		}
		if data != baseData {
			t.Fatalf("chunk=%d: session payload stats %+v, baseline %+v", chunk, data, baseData)
		}
	}

	alice, bob := OpenLocal(WithChunkSize(7))
	defer alice.Close()
	defer bob.Close()
	plan, err := alice.Explain(build(Alice))
	if err != nil {
		t.Fatal(err)
	}
	if plan.ChunkSize != 7 {
		t.Fatalf("session Explain plan ChunkSize = %d, want 7", plan.ChunkSize)
	}
	for _, s := range plan.Steps {
		if want := relation.NumChunks(s.N, 7); s.Chunks != want {
			t.Fatalf("step %s (N=%d): Chunks = %d, want %d", s.Op, s.N, s.Chunks, want)
		}
	}
}
