package secyan

import (
	"secyan/internal/mpc"
	"secyan/internal/sqlfront"
)

// SQL front end: a small SQL subset — exactly the free-connex
// join-aggregate class the protocol evaluates — compiled to secure query
// plans. See package internal/sqlfront for the grammar; in short:
//
//	SELECT r3.class, SUM(r2.cost * (100 - r1.coinsurance))
//	FROM r1, r2, r3
//	WHERE r1.person = r2.person AND r2.disease = r3.disease
//	  AND r1.state IN (3, 5)
//	GROUP BY r3.class
//
// One aggregate per query (SUM of a product of columns/constants,
// COUNT(*), or AVG — compiled as the §7 sum/count composition);
// equality joins; private selections against constants (including
// 'YYYY-MM-DD' date literals).

type (
	// SQLStatement is a parsed SQL query.
	SQLStatement = sqlfront.Statement
	// SQLCatalog maps table names to their (per-party) definitions.
	SQLCatalog = sqlfront.Catalog
	// SQLTable defines one catalog table: owner, public columns and
	// size, plus the data on the owner's side.
	SQLTable = sqlfront.TableDef
	// SQLQuery is a compiled, executable secure query.
	SQLQuery = sqlfront.Compiled
)

// ParseSQL parses the SQL subset.
func ParseSQL(src string) (*SQLStatement, error) {
	return sqlfront.Parse(src)
}

// CompileSQL type-checks a parsed statement against this party's catalog
// and prepares the secure query plan. Both parties compile the same
// statement against their own catalog views (identical apart from which
// tables carry data) and then call Exec concurrently.
func CompileSQL(st *SQLStatement, cat *SQLCatalog) (*SQLQuery, error) {
	return sqlfront.Compile(st, cat)
}

// ExecSQL parses, compiles and runs a query in one call. Alice receives
// the result relation; Bob receives nil.
func ExecSQL(p *Party, src string, cat *SQLCatalog) (*Relation, error) {
	st, err := sqlfront.Parse(src)
	if err != nil {
		return nil, err
	}
	c, err := sqlfront.Compile(st, cat)
	if err != nil {
		return nil, err
	}
	if err := c.Check(); err != nil {
		return nil, err
	}
	return c.Exec(p)
}

// NewSQLTable builds a catalog entry. Pass rel only on the owner's side.
func NewSQLTable(owner Role, columns []Attr, n int, rel *Relation) *SQLTable {
	return &sqlfront.TableDef{Owner: mpc.Role(owner), Columns: columns, N: n, Rel: rel}
}
