package secyan

import (
	"context"
	"strings"
	"sync"
	"testing"

	"secyan/internal/obs"
)

// TestObsSessionEventPlumbing checks the query-scoped observability
// plumbing end to end through the public Session API: session open/close
// and query admit/start/step/finish events all carry the session ID
// minted at Open and the query ID minted at admission, and the flight
// record of the completed query carries the same pair.
func TestObsSessionEventPlumbing(t *testing.T) {
	lg := obs.Events()
	lg.Reset()
	lg.Enable()
	EnableObservability()
	obs.Flight().Reset()
	defer func() {
		lg.Disable()
		lg.Reset()
		obs.Disable()
		obs.Flight().Reset()
	}()

	q, rels := sessionExampleQuery(17, 10, 16)
	alice, bob := OpenLocal()
	if alice.SID() == 0 || bob.SID() == 0 || alice.SID() == bob.SID() {
		t.Fatalf("session IDs not minted distinctly: alice %d, bob %d", alice.SID(), bob.SID())
	}

	ctx := context.Background()
	var wg sync.WaitGroup
	wg.Add(1)
	var berr error
	go func() {
		defer wg.Done()
		_, berr = bob.Run(ctx, viewFor(q, rels, Bob))
	}()
	res, aerr := alice.Run(ctx, viewFor(q, rels, Alice))
	wg.Wait()
	if aerr != nil || berr != nil {
		t.Fatalf("run: alice %v, bob %v", aerr, berr)
	}
	if res == nil {
		t.Fatal("Alice received no result")
	}
	alice.Close()
	bob.Close()

	// Events of Alice's session, via the public accessor.
	kinds := map[string]int{}
	var admitQID uint64
	for _, e := range RecentEvents(0) {
		if e.SID != alice.SID() {
			continue
		}
		kinds[e.Kind]++
		if e.Kind == "query.admit" {
			admitQID = e.QID
		}
	}
	for _, want := range []string{"session.open", "session.close", "query.admit", "query.start", "query.finish"} {
		if kinds[want] != 1 {
			t.Errorf("session %d has %d %s events, want 1 (all: %v)", alice.SID(), kinds[want], want, kinds)
		}
	}
	if kinds["query.step"] == 0 {
		t.Errorf("session %d has no query.step events: %v", alice.SID(), kinds)
	}
	if admitQID == 0 {
		t.Fatalf("query.admit carried no query ID")
	}
	for _, e := range RecentEvents(0) {
		if e.SID == alice.SID() && strings.HasPrefix(e.Kind, "query.") && e.QID != admitQID {
			t.Errorf("event %s carries qid %d, admission minted %d", e.Kind, e.QID, admitQID)
		}
	}

	// The flight record of Alice's side carries the same (sid, qid).
	var found bool
	for _, r := range FlightRecords() {
		if r.SID != alice.SID() {
			continue
		}
		found = true
		if r.QID != admitQID {
			t.Errorf("flight record qid %d, admission minted %d", r.QID, admitQID)
		}
		if r.Party != "Alice" {
			t.Errorf("record for Alice's session names party %s", r.Party)
		}
		if r.PlanDigest == "" || r.Steps == 0 || r.Bytes == 0 {
			t.Errorf("flight record incomplete: %+v", r)
		}
	}
	if !found {
		t.Errorf("no flight record carries Alice's session ID %d: %+v", alice.SID(), FlightRecords())
	}
}
