// Quickstart: the paper's running example (Example 1.1).
//
// An insurance company (Alice) holds a policy relation
// R1(person, coinsurance) and a disease classification R3(disease,
// class); a hospital (Bob) holds medical records R2(person, disease,
// cost). They jointly compute
//
//	select class, sum(cost * (1 - coinsurance))
//	from R1, R2, R3
//	where R1.person = R2.person and R2.disease = R3.disease
//	group by class
//
// without either side revealing its relation. Alice learns only the
// per-class totals; Bob learns nothing.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"secyan"
)

func main() {
	// --- Alice's data -------------------------------------------------
	// Annotation of a policy row is 100*(1-coinsurance), the paper's
	// fixed-point encoding (Example 3.1): person 1 is covered 80%, etc.
	policies := secyan.NewRelation("person", "coinsurance")
	policies.Append([]uint64{1, 20}, 80)
	policies.Append([]uint64{2, 50}, 50)
	policies.Append([]uint64{3, 10}, 90)

	// Disease classification; annotation 1 (pure join).
	classes := secyan.NewRelation("disease", "class")
	classes.Append([]uint64{100, 1}, 1) // disease 100 → class 1 (chronic)
	classes.Append([]uint64{101, 1}, 1)
	classes.Append([]uint64{102, 2}, 1) // class 2 (acute)

	// --- Bob's data ---------------------------------------------------
	// Annotation of a record is its cost in cents.
	records := secyan.NewRelation("person", "disease")
	records.Append([]uint64{1, 100}, 120_00)
	records.Append([]uint64{1, 102}, 80_00)
	records.Append([]uint64{2, 101}, 200_00)
	records.Append([]uint64{4, 100}, 999_00) // person 4 is uninsured

	// --- The query, as each party describes it -------------------------
	// Both parties agree on schemas, owners and public sizes; each
	// attaches only its own relations.
	queryFor := func(role secyan.Role) *secyan.Query {
		q := &secyan.Query{
			Inputs: []secyan.Input{
				{Name: "policies", Owner: secyan.Alice, Schema: policies.Schema, N: policies.Len()},
				{Name: "records", Owner: secyan.Bob, Schema: records.Schema, N: records.Len()},
				{Name: "classes", Owner: secyan.Alice, Schema: classes.Schema, N: classes.Len()},
			},
			Output: []secyan.Attr{"class"},
		}
		if role == secyan.Alice {
			q.Inputs[0].Rel = policies
			q.Inputs[2].Rel = classes
		} else {
			q.Inputs[1].Rel = records
		}
		return q
	}

	if err := secyan.CheckFreeConnex(queryFor(secyan.Alice), []secyan.Attr{"class"}); err != nil {
		log.Fatalf("query not supported: %v", err)
	}

	// --- Run both parties in-process -----------------------------------
	alice, bob := secyan.LocalParties(secyan.DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()

	result, bobResult, err := secyan.Run2PC(alice, bob,
		func(p *secyan.Party) (*secyan.Relation, error) { return secyan.Run(p, queryFor(secyan.Alice)) },
		func(p *secyan.Party) (*secyan.Relation, error) { return secyan.Run(p, queryFor(secyan.Bob)) },
	)
	if err != nil {
		log.Fatal(err)
	}
	if bobResult != nil {
		log.Fatal("Bob must learn nothing")
	}

	fmt.Println("expected payout by disease class (cents × 100):")
	for i := range result.Tuples {
		fmt.Printf("  class %d: %d\n", result.Tuples[i][0], result.Annot[i])
	}
	st := alice.Conn.Stats()
	fmt.Printf("transcript: %d bytes, %d rounds — and nothing about the other party's rows\n",
		st.TotalBytes(), st.Rounds)
}
