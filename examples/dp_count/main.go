// Differentially private join counting (paper §7, "protecting privacy
// against query results"): the parties compute how many of their records
// link up — but the revealed count carries Laplace noise calibrated to
// the join sensitivity, so Alice cannot pin down the exact number. The
// sensitivity Δ is the product of the parties' maximum join-key
// multiplicities (Johnson-Near-Song), computed inside a garbled circuit;
// Bob folds the noise into his share before the reveal, so the exact
// count never exists outside shares.
//
// Run with: go run ./examples/dp_count
package main

import (
	"fmt"
	"log"

	"secyan"
	"secyan/internal/core"
	"secyan/internal/dp"
	"secyan/internal/mpc"
)

func main() {
	mine := secyan.NewRelation("k")
	yours := secyan.NewRelation("k")
	for i := 0; i < 60; i++ {
		mine.Append([]uint64{uint64(i % 20)}, 1)
		yours.Append([]uint64{uint64(i % 30)}, 1)
	}
	// True join count: k in 0..19 appears 3x in mine and 2x in yours
	// -> 20 * 3 * 2 = 120.
	const epsilon = 1.0

	queryFor := func(role secyan.Role) *secyan.Query {
		q := &secyan.Query{
			Inputs: []secyan.Input{
				{Name: "mine", Owner: secyan.Alice, Schema: mine.Schema, N: mine.Len()},
				{Name: "yours", Owner: secyan.Bob, Schema: yours.Schema, N: yours.Len()},
			},
		}
		if role == secyan.Alice {
			q.Inputs[0].Rel = mine
		} else {
			q.Inputs[1].Rel = yours
		}
		return q
	}

	alice, bob := secyan.LocalParties(secyan.DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	run := func(p *mpc.Party) (uint64, error) {
		res, err := core.RunShared(p, queryFor(p.Role))
		if err != nil {
			return 0, err
		}
		var ownRel *secyan.Relation
		if p.Role == mpc.Alice {
			ownRel = mine
		} else {
			ownRel = yours
		}
		myMax, err := dp.MaxMultiplicity(ownRel, []secyan.Attr{"k"})
		if err != nil {
			return 0, err
		}
		delta, err := dp.SensitivityProduct(p, myMax)
		if err != nil {
			return 0, err
		}
		if p.Role == mpc.Alice {
			fmt.Printf("join-count sensitivity Δ = %d (max multiplicities %d × peer's)\n", delta, myMax)
		}
		return dp.NoisyReveal(p, res, delta, epsilon)
	}
	noisy, _, err := secyan.Run2PC(alice, bob, run, run)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("noisy shared-link count: %d (true count 120, Laplace scale Δ/ε = %.1f)\n",
		int32(uint32(noisy)), float64(6)/epsilon)
}
