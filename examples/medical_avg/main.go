// Average cost per disease class across two private databases — the
// query-composition extension of paper §7: AVG is no single semiring
// aggregate, so the parties run the secure Yannakakis protocol twice
// (sum of costs, count of records), keep both results secret-shared, and
// a final small garbled circuit divides them, revealing only the
// averages to Alice.
//
// Run with: go run ./examples/medical_avg
package main

import (
	"fmt"
	"log"

	"secyan"
)

func main() {
	// Alice: disease → class mapping (public-ish reference data she holds).
	classes := secyan.NewRelation("disease", "class")
	for d := uint64(0); d < 6; d++ {
		classes.Append([]uint64{d, d % 2}, 1)
	}

	// Bob: hospital records; the cost annotation feeds the sum query, the
	// constant-1 annotation feeds the count query.
	type rec struct{ person, disease, cost uint64 }
	recs := []rec{
		{1, 0, 1000}, {2, 0, 3000}, {3, 1, 500},
		{4, 2, 800}, {5, 2, 1200}, {6, 2, 400}, {7, 5, 90},
	}
	sumRel := secyan.NewRelation("person", "disease")
	cntRel := secyan.NewRelation("person", "disease")
	for _, r := range recs {
		sumRel.Append([]uint64{r.person, r.disease}, r.cost)
		cntRel.Append([]uint64{r.person, r.disease}, 1)
	}

	queryFor := func(role secyan.Role, records *secyan.Relation) *secyan.Query {
		q := &secyan.Query{
			Inputs: []secyan.Input{
				{Name: "records", Owner: secyan.Bob, Schema: records.Schema, N: records.Len()},
				{Name: "classes", Owner: secyan.Alice, Schema: classes.Schema, N: classes.Len()},
			},
			Output: []secyan.Attr{"class"},
		}
		if role == secyan.Bob {
			q.Inputs[0].Rel = records
		} else {
			q.Inputs[1].Rel = classes
		}
		return q
	}

	alice, bob := secyan.LocalParties(secyan.DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()

	run := func(p *secyan.Party) (*secyan.Relation, error) {
		// Two shared runs over the same tuples (different annotations),
		// then one division circuit: avg = sum / count.
		sum, err := secyan.RunShared(p, queryFor(p.Role, sumRel))
		if err != nil {
			return nil, err
		}
		cnt, err := secyan.RunShared(p, queryFor(p.Role, cntRel))
		if err != nil {
			return nil, err
		}
		return secyan.RevealRatio(p, sum, cnt, 1)
	}

	result, _, err := secyan.Run2PC(alice, bob, run, run)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("average treatment cost by class (integer division):")
	for i := range result.Tuples {
		fmt.Printf("  class %d: avg %d\n", result.Tuples[i][0], result.Annot[i])
	}
	// Plaintext check.
	sums := map[uint64]uint64{}
	cnts := map[uint64]uint64{}
	for _, r := range recs {
		class := r.disease % 2
		sums[class] += r.cost
		cnts[class]++
	}
	fmt.Println("expected:")
	for class, s := range sums {
		fmt.Printf("  class %d: avg %d\n", class, s/cnts[class])
	}
}
