// Private intersection-join counting: how many (customer, supplier)
// relationships do two companies share, without revealing the
// relationships themselves? This is the count aggregation (O = ∅) path
// of the protocol: all annotations are 1 and the single revealed number
// is the join size — the degenerate case the paper notes reduces the
// oblivious semijoin machinery to (almost) plain PSI (§6.5).
//
// Run with: go run ./examples/intersection_count
package main

import (
	"fmt"
	"log"

	"secyan"
)

func main() {
	// Each party holds a set of account numbers (as single-column
	// relations annotated with 1).
	mine := secyan.NewRelation("account")
	yours := secyan.NewRelation("account")
	for v := uint64(0); v < 40; v += 2 {
		mine.Append([]uint64{v}, 1) // evens
	}
	for v := uint64(0); v < 40; v += 3 {
		yours.Append([]uint64{v}, 1) // multiples of three
	}

	queryFor := func(role secyan.Role) *secyan.Query {
		q := &secyan.Query{
			Inputs: []secyan.Input{
				{Name: "mine", Owner: secyan.Alice, Schema: mine.Schema, N: mine.Len()},
				{Name: "yours", Owner: secyan.Bob, Schema: yours.Schema, N: yours.Len()},
			},
			Output: nil, // O = ∅: a single grand total
		}
		if role == secyan.Alice {
			q.Inputs[0].Rel = mine
		} else {
			q.Inputs[1].Rel = yours
		}
		return q
	}

	alice, bob := secyan.LocalParties(secyan.DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	res, _, err := secyan.Run2PC(alice, bob,
		func(p *secyan.Party) (*secyan.Relation, error) { return secyan.Run(p, queryFor(secyan.Alice)) },
		func(p *secyan.Party) (*secyan.Relation, error) { return secyan.Run(p, queryFor(secyan.Bob)) },
	)
	if err != nil {
		log.Fatal(err)
	}
	count := uint64(0)
	if res.Len() == 1 {
		count = res.Annot[0]
	}
	fmt.Printf("shared accounts: %d (expected: multiples of 6 below 40 = 7)\n", count)
}
