// SQL front end demo: the quickstart query written as SQL and compiled
// to a secure plan. Each party holds its own catalog view (same schema
// metadata, only its own data) and both execute the same statement.
//
// Run with: go run ./examples/sql_query
package main

import (
	"fmt"
	"log"

	"secyan"
)

const query = `
	SELECT classes.class, SUM(records.cost * (100 - policies.coinsurance))
	FROM policies, records, classes
	WHERE policies.person = records.person
	  AND records.disease = classes.disease
	  AND records.cost > 500
	GROUP BY classes.class`

func main() {
	policies := secyan.NewRelation("person", "coinsurance")
	policies.Append([]uint64{1, 20}, 1)
	policies.Append([]uint64{2, 50}, 1)
	records := secyan.NewRelation("person", "disease", "cost")
	records.Append([]uint64{1, 100, 1200}, 1)
	records.Append([]uint64{2, 100, 2000}, 1)
	records.Append([]uint64{2, 101, 300}, 1) // filtered by cost > 500
	classes := secyan.NewRelation("disease", "class")
	classes.Append([]uint64{100, 1}, 1)
	classes.Append([]uint64{101, 2}, 1)

	catalogFor := func(role secyan.Role) *secyan.SQLCatalog {
		give := func(owner secyan.Role, r *secyan.Relation) *secyan.Relation {
			if role == owner {
				return r
			}
			return nil
		}
		return &secyan.SQLCatalog{Tables: map[string]*secyan.SQLTable{
			"policies": secyan.NewSQLTable(secyan.Alice, policies.Schema.Attrs, policies.Len(), give(secyan.Alice, policies)),
			"records":  secyan.NewSQLTable(secyan.Bob, records.Schema.Attrs, records.Len(), give(secyan.Bob, records)),
			"classes":  secyan.NewSQLTable(secyan.Alice, classes.Schema.Attrs, classes.Len(), give(secyan.Alice, classes)),
		}}
	}

	alice, bob := secyan.LocalParties(secyan.DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()
	res, _, err := secyan.Run2PC(alice, bob,
		func(p *secyan.Party) (*secyan.Relation, error) { return secyan.ExecSQL(p, query, catalogFor(p.Role)) },
		func(p *secyan.Party) (*secyan.Relation, error) { return secyan.ExecSQL(p, query, catalogFor(p.Role)) },
	)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("SQL over private data:")
	fmt.Println(query)
	fmt.Println("result:")
	for i := range res.Tuples {
		fmt.Printf("  class %d  ->  %d\n", res.Tuples[i][0], res.Annot[i])
	}
}
