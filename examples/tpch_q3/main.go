// TPC-H Q3 under secure Yannakakis: the headline experiment of the paper
// (Figure 2), at a laptop-friendly scale. Generates a deterministic
// TPC-H-style dataset, splits it between the parties (customer and
// lineitem to Alice, orders to Bob), runs the full 2PC protocol, and
// cross-checks the revealed result against the plaintext engine.
//
// Run with: go run ./examples/tpch_q3 [-scale 0.1]
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"
	"time"

	"secyan"
	"secyan/internal/queries"
	"secyan/internal/tpch"
)

func main() {
	scale := flag.Float64("scale", 0.12, "dataset size in MB")
	flag.Parse()

	db := tpch.Generate(tpch.Config{ScaleMB: *scale, Seed: 42})
	fmt.Printf("dataset: %d customers, %d orders, %d lineitems\n",
		db.Customer.Len(), db.Orders.Len(), db.Lineitem.Len())

	spec := queries.Q3()
	alice, bob := secyan.LocalParties(secyan.DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()

	start := time.Now()
	secure, _, err := secyan.Run2PC(alice, bob,
		func(p *secyan.Party) (*secyan.Relation, error) { return spec.Secure(p, db) },
		func(p *secyan.Party) (*secyan.Relation, error) { return spec.Secure(p, db) },
	)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	plain, err := spec.Plain(db, secyan.DefaultRing.Bits)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\ntop revenue orders (secure result, %d rows):\n", secure.Len())
	type row struct {
		orderkey, revenue uint64
	}
	var rows []row
	for i := range secure.Tuples {
		rows = append(rows, row{secure.Tuples[i][0], secure.Annot[i]})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].revenue > rows[j].revenue })
	for i := 0; i < len(rows) && i < 5; i++ {
		fmt.Printf("  order %6d  revenue %12d (cents × 100)\n", rows[i].orderkey, rows[i].revenue)
	}

	st := alice.Conn.Stats()
	fmt.Printf("\nsecure: %.2fs, %.2f MB, %d rounds; plaintext reference agrees on %d rows: %v\n",
		elapsed.Seconds(), float64(st.TotalBytes())/1e6, st.Rounds,
		plain.Len(), plain.Len() == secure.Len())
}
