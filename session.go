package secyan

// The Session API is the package's public entry point: one Session per
// party multiplexes any number of protocol executions — online queries,
// shared-result compositions, background Precompute passes — over a
// single connection, with deadlines, heartbeats and per-stream fault
// isolation provided by the transport session layer. The free
// functions (Run, RunShared, Precompute, ...) remain as thin wrappers
// over a caller-managed Party for code written against the original
// one-query-per-connection API.

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"time"

	"secyan/internal/core"
	"secyan/internal/mpc"
	"secyan/internal/obs"
	"secyan/internal/parallel"
	"secyan/internal/transport"
)

// Tracer records span timelines of protocol runs; see WithTracer and
// the observability section of DESIGN.md.
type Tracer = obs.Tracer

// NewTracer returns an empty span recorder for WithTracer.
func NewTracer() *Tracer { return obs.NewTracer() }

// SessionStats is the rolled-up traffic of one Session endpoint:
// per-stream payload totals plus the session layer's control-plane
// overhead (heartbeats, flow-control credits, stream headers).
type SessionStats = transport.SessionStats

// StreamError labels a failure with the logical stream it occurred on;
// errors returned by Session methods unwrap through it, so
// errors.Is(err, ctx.Err()) and errors.As(&StreamError{}) both work.
type StreamError = transport.StreamError

// ErrPeerTimeout reports a peer that stopped answering heartbeats.
var ErrPeerTimeout = transport.ErrPeerTimeout

// config collects every knob of the functional-options model. The same
// Option values configure Open/OpenLocal and, where meaningful,
// Explain; options that do not apply to a call are ignored by it.
type config struct {
	ring           Ring
	workers        int
	tracer         *Tracer
	deadline       time.Duration
	streamDeadline time.Duration
	heartbeat      time.Duration
	peerTimeout    time.Duration
	queueCap       int
	estOut         int
	chunk          int
	backend        core.BackendID
	tenant         string
	wrapStream     func(id uint32, c Conn) Conn
}

// Option configures Open, OpenLocal or Explain.
type Option func(*config)

// WithRing selects the annotation ring (default: DefaultRing, the
// paper's ℓ=32).
func WithRing(r Ring) Option { return func(c *config) { c.ring = r } }

// WithWorkers pins the crypto-kernel worker count for this process
// (the pool is process-wide; 0 keeps GOMAXPROCS).
func WithWorkers(n int) Option { return func(c *config) { c.workers = n } }

// WithTracer records run/phase/step/kernel span timelines of every
// execution on the session, one track per party and stream.
func WithTracer(tr *Tracer) Option { return func(c *config) { c.tracer = tr } }

// WithDeadline bounds the whole session: when it expires, every stream
// fails with context.DeadlineExceeded.
func WithDeadline(d time.Duration) Option { return func(c *config) { c.deadline = d } }

// WithStreamDeadline bounds each individual protocol execution opened
// through the session.
func WithStreamDeadline(d time.Duration) Option { return func(c *config) { c.streamDeadline = d } }

// WithHeartbeat enables idle heartbeats on the session: pings every
// interval, with peer-liveness failure after WithPeerTimeout (default
// 3× the interval).
func WithHeartbeat(interval time.Duration) Option { return func(c *config) { c.heartbeat = interval } }

// WithPeerTimeout sets how long the session tolerates total silence
// from the peer before failing with ErrPeerTimeout (requires
// WithHeartbeat).
func WithPeerTimeout(d time.Duration) Option { return func(c *config) { c.peerTimeout = d } }

// WithQueueCap bounds each stream's receive queue (in messages); it is
// the flow-control window and must match between the two endpoints.
func WithQueueCap(n int) Option { return func(c *config) { c.queueCap = n } }

// WithEstOut sets the assumed output size Explain uses for the
// join-phase steps of multi-survivor queries. Ignored by Open.
func WithEstOut(n int) Option { return func(c *config) { c.estOut = n } }

// WithChunkSize bounds the executor's tuple-plane working set: each
// operator streams its relations in windows of at most n tuples, so
// per-step memory is O(n) instead of O(relation). n == 0 keeps the
// process default (see relation.DefaultChunkSize, 4096); n < 0 disables
// chunking and materializes fully. Chunking is transcript-invariant:
// for every n, results and per-stream traffic are byte-identical (see
// DESIGN.md §12).
func WithChunkSize(n int) Option { return func(c *config) { c.chunk = n } }

// WithBackend forces every semijoin/aggregate step of this session's
// plans onto one secure-join backend wherever it is applicable
// (BackendPSIOEP, BackendBifrost, BackendGC); steps where it does not
// apply keep the cost-based choice. The zero value selects the cheapest
// applicable backend per step. Both parties must configure the same
// backend — unlike chunking, this changes the transcript.
func WithBackend(b BackendID) Option { return func(c *config) { c.backend = b } }

// WithTenant labels every query on the session with a tenant — the
// billing/scheduling principal carried on events, labeled metrics and
// flight records (and used by the secyand daemon for fair scheduling
// and quota accounting). Overridable per query via WithQueryTag.
// Process-local bookkeeping only, never on the wire.
func WithTenant(name string) Option { return func(c *config) { c.tenant = name } }

// WithStreamWrapper interposes f on every logical stream the session
// opens — the hook behind fault injection (see transport.InjectFaults)
// and per-stream instrumentation. f must preserve Conn semantics.
func WithStreamWrapper(f func(id uint32, c Conn) Conn) Option {
	return func(c *config) { c.wrapStream = f }
}

// runConfig is the per-query view of the session config: the fields a
// single execution may override. Session-level Options seed it
// (defaults); RunOptions then apply on top, so per-query values always
// win — TestRunOptionPrecedence pins this order.
type runConfig struct {
	chunk    int
	backend  core.BackendID
	tenant   string
	deadline time.Duration
	shared   bool
}

// RunOption tunes one query execution on a Session, as a trailing
// variadic to Query, Run, RunTrace, RunShared, Precompute and
// RevealRatio. Per-query options override the session-level defaults
// set by Options at Open.
type RunOption func(*runConfig)

// WithQueryBackend forces this query's semijoin/aggregate steps onto
// one backend, overriding the session's WithBackend default. Both
// parties must pass the same value — like WithBackend, this changes
// the transcript.
func WithQueryBackend(b BackendID) RunOption { return func(c *runConfig) { c.backend = b } }

// WithQueryChunkSize overrides the session's WithChunkSize default for
// this query only (transcript-invariant; see WithChunkSize).
func WithQueryChunkSize(n int) RunOption { return func(c *runConfig) { c.chunk = n } }

// WithQueryDeadline bounds this query's wall time: the execution runs
// under a context that expires after d, so it fails with
// context.DeadlineExceeded (wrapped in the step's StreamError) when
// exceeded. Independent of the session-wide WithDeadline and the
// per-stream WithStreamDeadline.
func WithQueryDeadline(d time.Duration) RunOption { return func(c *runConfig) { c.deadline = d } }

// WithQueryTag labels this query with a tenant, overriding the
// session's WithTenant default; see WithTenant.
func WithQueryTag(tenant string) RunOption { return func(c *runConfig) { c.tenant = tenant } }

// WithSharedResult keeps the result annotations secret-shared instead
// of revealing them to Alice: Query returns Result.Shared in place of
// Result.Relation — the building block of the paper-§7 compositions
// (see RevealRatio). RunShared is shorthand for this option.
func WithSharedResult() RunOption { return func(c *runConfig) { c.shared = true } }

// runConfig seeds the per-query config from the session defaults and
// applies opts on top.
func (s *Session) runConfig(opts []RunOption) runConfig {
	rc := runConfig{chunk: s.cfg.chunk, backend: s.cfg.backend, tenant: s.cfg.tenant}
	for _, o := range opts {
		o(&rc)
	}
	return rc
}

func buildConfig(opts []Option) config {
	c := config{ring: DefaultRing}
	for _, o := range opts {
		o(&c)
	}
	c.ring = c.ring.OrDefault()
	return c
}

// Session is one party's endpoint of a multiplexed protocol session:
// concurrent Run/RunShared/Precompute calls each execute on their own
// logical stream over the shared connection. The two parties must
// issue the same sequence of session calls (the symmetry every 2PC
// protocol here already requires); concurrent calls pair by stream
// open order, so heterogeneous concurrent queries should be issued in
// a deterministic order on both sides.
type Session struct {
	cfg  config
	role Role
	sid  uint64 // observability session ID (obs.NextSessionID)
	sess *mpc.Session

	mu     sync.Mutex
	staged []stagedParty
}

// SID returns the session's process-local observability ID: the
// session ID stamped on every event and flight record this session's
// queries emit.
func (s *Session) SID() uint64 { return s.sid }

// stagedParty is a stream whose Party holds material from a Precompute
// pass, parked until the next Run consumes it.
type stagedParty struct {
	p  *Party
	id uint32
}

// Open starts a session over conn for the given role. The session owns
// conn: close the session, not the conn. Both parties must open
// compatible sessions (same ring, same queue capacity) over the two
// ends of one connection.
func Open(role Role, conn Conn, opts ...Option) (*Session, error) {
	if role != Alice && role != Bob {
		return nil, fmt.Errorf("secyan: invalid role %d", role)
	}
	cfg := buildConfig(opts)
	if cfg.workers > 0 {
		parallel.SetWorkers(cfg.workers)
	}
	if cfg.tracer != nil {
		obs.Install(cfg.tracer)
	}
	sid := obs.NextSessionID()
	sess := &Session{
		cfg:  cfg,
		role: role,
		sid:  sid,
		sess: mpc.NewSession(role, conn, cfg.ring, mpc.SessionConfig{
			QueueCap:       cfg.queueCap,
			Heartbeat:      cfg.heartbeat,
			PeerTimeout:    cfg.peerTimeout,
			Deadline:       cfg.deadline,
			StreamDeadline: cfg.streamDeadline,
			WrapStream:     cfg.wrapStream,
			SID:            sid,
		}),
	}
	if lg := obs.Events(); lg.On() {
		lg.Emit("session.open", obs.QueryTag{SID: sid}, slog.String("role", role.String()))
	}
	return sess, nil
}

// OpenLocal returns two connected in-process sessions over an
// in-memory transport, for tests, demos and benchmarks.
func OpenLocal(opts ...Option) (alice, bob *Session) {
	ca, cb := transport.Pair()
	alice, _ = Open(Alice, ca, opts...)
	bob, _ = Open(Bob, cb, opts...)
	return alice, bob
}

// ListenSession accepts one TCP connection and opens a session over it.
func ListenSession(addr string, role Role, opts ...Option) (*Session, error) {
	c, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return Open(role, c, opts...)
}

// DialSession connects to a listening peer and opens a session.
func DialSession(addr string, role Role, opts ...Option) (*Session, error) {
	c, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return Open(role, c, opts...)
}

// party obtains the Party for the next protocol execution: a staged
// (precomputed) stream if one is parked, otherwise a fresh stream.
func (s *Session) party() (*Party, uint32, error) {
	s.mu.Lock()
	if len(s.staged) > 0 {
		sp := s.staged[0]
		s.staged = s.staged[1:]
		s.mu.Unlock()
		return sp.p, sp.id, nil
	}
	s.mu.Unlock()
	p, id, err := s.sess.NextParty(mpc.PartyOpts{})
	if err != nil {
		return nil, 0, err
	}
	if s.cfg.tracer != nil {
		p.Track = s.cfg.tracer.Track(fmt.Sprintf("%s/stream-%d", s.role, id))
	}
	return p, id, nil
}

// Result is the unified outcome of one query execution on a Session.
// Exactly one of Relation and Shared is populated on success, depending
// on WithSharedResult (and on the party: only Alice receives revealed
// rows). Trace is always attached — valid as a prefix even when the
// execution failed.
type Result struct {
	// Relation is the revealed result (Alice's side of a revealing run;
	// nil on Bob and for shared runs).
	Relation *Relation
	// Shared is the still-secret-shared result of a WithSharedResult
	// run, combinable across runs (see RevealRatio).
	Shared *SharedResult
	// Trace is the per-step execution trace.
	Trace *Trace
}

// Query executes the secure Yannakakis protocol for q on its own
// stream and returns the unified Result. It is the single entry point
// the deprecated Run/RunTrace/RunShared wrap: a revealing run fills
// Result.Relation (Alice) and Result.Trace; WithSharedResult fills
// Result.Shared instead. A preceding Precompute of the same query
// shape is consumed transparently. The returned Result is non-nil even
// on error, carrying the prefix trace.
func (s *Session) Query(ctx context.Context, q *Query, opts ...RunOption) (*Result, error) {
	rc := s.runConfig(opts)
	res := &Result{}
	p, id, err := s.party()
	if err != nil {
		return res, err
	}
	defer p.Conn.Close()
	if rc.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.deadline)
		defer cancel()
	}
	kind := "run"
	if rc.shared {
		kind = "run-shared"
	}
	tag := s.admit(p, id, kind, rc.tenant)
	eo := core.ExecOptions{ChunkSize: rc.chunk, Backend: rc.backend, Tag: tag}
	if rc.shared {
		res.Shared, res.Trace, err = core.RunSharedContextOpts(ctx, p, q, eo)
	} else {
		res.Relation, res.Trace, err = core.RunContextOpts(ctx, p, q, eo)
	}
	if err != nil {
		return res, s.labeled(id, err)
	}
	return res, nil
}

// Run executes the secure Yannakakis protocol for q on its own stream.
// Alice receives the query results; Bob receives nil. A preceding
// Precompute of the same query shape is consumed transparently.
//
// Deprecated: use Query, which returns the unified Result. Run remains
// as a thin wrapper and is transcript-identical.
func (s *Session) Run(ctx context.Context, q *Query, opts ...RunOption) (*Relation, error) {
	res, err := s.Query(ctx, q, opts...)
	return res.Relation, err
}

// RunTrace is Run returning the per-step execution trace as well
// (valid as a prefix even on error).
//
// Deprecated: use Query, which returns the unified Result. RunTrace
// remains as a thin wrapper and is transcript-identical.
func (s *Session) RunTrace(ctx context.Context, q *Query, opts ...RunOption) (*Relation, *Trace, error) {
	res, err := s.Query(ctx, q, opts...)
	return res.Relation, res.Trace, err
}

// RunShared executes the protocol but keeps the result annotations
// secret-shared, enabling the compositions of paper §7. The returned
// result is stream-independent data: it may be combined (RevealRatio)
// with results from other runs of this session.
//
// Deprecated: use Query with WithSharedResult. RunShared remains as a
// thin wrapper and is transcript-identical.
func (s *Session) RunShared(ctx context.Context, q *Query, opts ...RunOption) (*SharedResult, error) {
	all := make([]RunOption, 0, len(opts)+1)
	all = append(all, opts...)
	all = append(all, WithSharedResult())
	res, err := s.Query(ctx, q, all...)
	return res.Shared, err
}

// Precompute executes the offline phase of q's plan on a background
// stream — OT pool fills and ahead-of-time garbling can overlap online
// queries running on other streams. The staged material is parked and
// consumed by the next Run/RunShared on this session; both parties
// must keep their call sequences aligned, as always.
func (s *Session) Precompute(ctx context.Context, q *Query, opts ...RunOption) (*Trace, error) {
	rc := s.runConfig(opts)
	p, id, err := s.sess.NextParty(mpc.PartyOpts{})
	if err != nil {
		return nil, err
	}
	if s.cfg.tracer != nil {
		p.Track = s.cfg.tracer.Track(fmt.Sprintf("%s/stream-%d", s.role, id))
	}
	if rc.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.deadline)
		defer cancel()
	}
	s.admit(p, id, "precompute", rc.tenant)
	tr, err := core.PrecomputeOpts(ctx, p, q, core.PlanOptions{Backend: rc.backend})
	if err != nil {
		p.Conn.Close()
		return tr, s.labeled(id, err)
	}
	s.mu.Lock()
	s.staged = append(s.staged, stagedParty{p: p, id: id})
	s.mu.Unlock()
	return tr, nil
}

// RevealRatio reveals (num·scale)/den per result row to Alice on a
// fresh stream — the composition used for AVG and market-share style
// aggregates over two RunShared results.
func (s *Session) RevealRatio(ctx context.Context, num, den *SharedResult, scale uint64, opts ...RunOption) (*Relation, error) {
	rc := s.runConfig(opts)
	p, id, err := s.party()
	if err != nil {
		return nil, err
	}
	defer p.Conn.Close()
	if rc.deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, rc.deadline)
		defer cancel()
	}
	s.admit(p, id, "reveal-ratio", rc.tenant)
	pp, release := p.WithContext(ctx)
	defer release()
	rel, err := core.RevealRatio(pp, num, den, scale)
	if err != nil {
		return nil, s.labeled(id, err)
	}
	return rel, nil
}

// Explain derives the execution plan and communication estimate for q
// under this session's ring. opts merge onto the session's own config —
// a session opened WithChunkSize/WithBackend sees those in its Explain
// output, and per-call opts override them (the same precedence as
// RunOptions on Query; TestSessionExplainMergesSessionConfig pins it).
// Options: WithEstOut, WithChunkSize, WithBackend.
func (s *Session) Explain(q *Query, opts ...Option) (*Plan, error) {
	cfg := s.cfg
	for _, o := range opts {
		o(&cfg)
	}
	return core.ExplainOpts(q, cfg.ring.OrDefault().Bits,
		core.PlanOptions{EstOut: cfg.estOut, ChunkSize: cfg.chunk, Backend: cfg.backend})
}

// Stats snapshots the session's rolled-up traffic.
func (s *Session) Stats() SessionStats { return s.sess.Stats() }

// Err returns the session-fatal error, or nil while healthy.
func (s *Session) Err() error { return s.sess.Err() }

// Close ends the session; in-flight executions fail with ErrClosed.
func (s *Session) Close() error {
	if lg := obs.Events(); lg.On() {
		lg.Emit("session.close", obs.QueryTag{SID: s.sid}, slog.String("role", s.role.String()))
	}
	return s.sess.Close()
}

// admit mints the query ID for one protocol execution, stamps it on the
// party's tag (so events emitted below the executor attribute
// correctly) and emits the query.admit event. The returned tag is
// passed to the executor through ExecOptions. Admission is pure
// process-local bookkeeping: with observation off it is two atomic
// loads and, when a record could ever be produced, one counter
// increment.
func (s *Session) admit(p *Party, id uint32, kind, tenant string) obs.QueryTag {
	tag := obs.QueryTag{SID: s.sid, Tenant: tenant}
	lg := obs.Events()
	if !lg.On() && !obs.Enabled() {
		p.Tag = tag
		return tag
	}
	tag.QID = obs.NextQueryID()
	p.Tag = tag
	if lg.On() {
		lg.Emit("query.admit", tag,
			slog.String("kind", kind),
			slog.String("role", s.role.String()),
			slog.Uint64("stream", uint64(id)))
	}
	return tag
}

// labeled ensures an execution error carries its stream id (executor
// errors are already phase/op-labeled; transport errors arrive
// pre-labeled by the mux and are left alone).
func (s *Session) labeled(id uint32, err error) error {
	var se *StreamError
	if errors.As(err, &se) {
		return err
	}
	return &StreamError{Stream: id, Err: err}
}
