package secyan

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"secyan/internal/transport"
)

// exampleQuery builds the paper's running example (insurance ⋈ records
// ⋈ classes, aggregate by class) with deterministic random data, fully
// populated.
func sessionExampleQuery(seed int64, nPersons, nRecords int) (*Query, []*Relation) {
	rng := rand.New(rand.NewSource(seed))
	r1 := NewRelation("person", "coinsurance")
	for i := 0; i < nPersons; i++ {
		r1.Append([]uint64{uint64(i), uint64(rng.Intn(100))}, uint64(rng.Intn(100)))
	}
	r2 := NewRelation("person", "disease")
	for i := 0; i < nRecords; i++ {
		r2.Append([]uint64{uint64(rng.Intn(nPersons + 3)), uint64(rng.Intn(5))}, uint64(rng.Intn(1000)))
	}
	r3 := NewRelation("disease", "class")
	for d := 0; d < 4; d++ {
		r3.Append([]uint64{uint64(d), uint64(d % 2)}, 1)
	}
	q := &Query{
		Inputs: []Input{
			{Name: "insurance", Owner: Alice, Schema: r1.Schema, N: r1.Len()},
			{Name: "records", Owner: Bob, Schema: r2.Schema, N: r2.Len()},
			{Name: "classes", Owner: Alice, Schema: r3.Schema, N: r3.Len()},
		},
		Output: []Attr{"class"},
	}
	return q, []*Relation{r1, r2, r3}
}

// viewFor strips the peer's relations, producing one party's query.
func viewFor(q *Query, rels []*Relation, role Role) *Query {
	cq := &Query{Output: q.Output}
	for i, in := range q.Inputs {
		ci := in
		if in.Owner == role {
			ci.Rel = rels[i]
		} else {
			ci.Rel = nil
		}
		cq.Inputs = append(cq.Inputs, ci)
	}
	return cq
}

func sumByClass(r *Relation) map[uint64]uint64 {
	out := map[uint64]uint64{}
	for i := range r.Tuples {
		out[r.Tuples[i][0]] += r.Annot[i]
	}
	return out
}

// TestSessionConcurrentRuns executes several queries concurrently over
// one OpenLocal session pair and checks each against the plaintext
// engine.
func TestSessionConcurrentRuns(t *testing.T) {
	q, rels := sessionExampleQuery(7, 12, 20)
	want, err := Plaintext(viewFor(q, rels, Alice), DefaultRing)
	if err == nil {
		t.Fatal("plaintext over a partial view should fail") // guard: viewFor must strip
	}
	full := &Query{Inputs: append([]Input(nil), q.Inputs...), Output: q.Output}
	for i := range full.Inputs {
		full.Inputs[i].Rel = rels[i]
	}
	want, err = Plaintext(full, DefaultRing)
	if err != nil {
		t.Fatal(err)
	}

	alice, bob := OpenLocal()
	defer alice.Close()
	defer bob.Close()

	const n = 3
	ctx := context.Background()
	var wg sync.WaitGroup
	results := make([]*Relation, n)
	errs := make([]error, 2*n)
	for i := 0; i < n; i++ {
		wg.Add(2)
		go func(i int) {
			defer wg.Done()
			_, errs[2*i+1] = bob.Run(ctx, viewFor(q, rels, Bob))
		}(i)
		go func(i int) {
			defer wg.Done()
			results[i], errs[2*i] = alice.Run(ctx, viewFor(q, rels, Alice))
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	wantSums := sumByClass(want)
	for i := 0; i < n; i++ {
		if got := sumByClass(results[i]); !reflect.DeepEqual(got, wantSums) {
			t.Fatalf("run %d: %v want %v", i, got, wantSums)
		}
	}
	st := alice.Stats()
	if st.Streams != n || st.OpenStreams != 0 {
		t.Fatalf("streams %d open %d; want %d and 0", st.Streams, st.OpenStreams, n)
	}
	if st.Data.BytesSent == 0 || st.OverheadBytesSent == 0 {
		t.Fatalf("stats rollup missing traffic: %+v", st)
	}
	if alice.Err() != nil || bob.Err() != nil {
		t.Fatalf("healthy session reports error: %v / %v", alice.Err(), bob.Err())
	}
}

// TestSessionPrecomputeThenRun stages the offline phase over the bare
// query shape on a background stream, then runs the query online,
// consuming the staged material.
func TestSessionPrecomputeThenRun(t *testing.T) {
	q, rels := sessionExampleQuery(11, 10, 16)
	// Frequent pings exercise the heartbeat plumbing alongside real
	// protocol traffic; the generous timeout keeps the test robust on
	// starved schedulers (race detector, single-core CI).
	alice, bob := OpenLocal(WithHeartbeat(100*time.Millisecond), WithPeerTimeout(10*time.Second))
	defer alice.Close()
	defer bob.Close()

	ctx := context.Background()
	shape := viewFor(q, nil, Role(255)) // no relations attached anywhere
	preDone := make(chan error, 1)
	go func() {
		_, err := bob.Precompute(ctx, shape)
		preDone <- err
	}()
	tr, err := alice.Precompute(ctx, shape)
	if err != nil {
		t.Fatalf("precompute: %v", err)
	}
	if err := <-preDone; err != nil {
		t.Fatalf("precompute (bob): %v", err)
	}
	if tr == nil || len(tr.Steps) == 0 {
		t.Fatal("precompute returned no trace steps")
	}

	runDone := make(chan error, 1)
	go func() {
		_, err := bob.Run(ctx, viewFor(q, rels, Bob))
		runDone <- err
	}()
	res, err := alice.Run(ctx, viewFor(q, rels, Alice))
	if err != nil {
		t.Fatalf("staged run: %v", err)
	}
	if err := <-runDone; err != nil {
		t.Fatalf("staged run (bob): %v", err)
	}
	full := viewFor(q, rels, Alice)
	for i := range full.Inputs {
		full.Inputs[i].Rel = rels[i]
	}
	want, err := Plaintext(full, DefaultRing)
	if err != nil {
		t.Fatal(err)
	}
	if got, w := sumByClass(res), sumByClass(want); !reflect.DeepEqual(got, w) {
		t.Fatalf("staged result %v want %v", got, w)
	}
	// The staged stream was consumed: both endpoints opened exactly two
	// streams (precompute + nothing new for the run).
	if st := alice.Stats(); st.Streams != 1 {
		t.Fatalf("run after precompute opened a fresh stream: %d streams", st.Streams)
	}
}

// TestSessionSharedComposition reproduces the §7 AVG composition
// through the Session API: two RunShared results combined by
// RevealRatio on a third stream.
func TestSessionSharedComposition(t *testing.T) {
	q, rels := sessionExampleQuery(13, 10, 16)
	sum := viewFor(q, rels, Alice)
	// The count query re-annotates every tuple with 1.
	cntRels := make([]*Relation, len(rels))
	for i, r := range rels {
		c := NewRelation(r.Schema.Attrs...)
		for j := range r.Tuples {
			c.Append(r.Tuples[j], 1)
		}
		cntRels[i] = c
	}
	cnt := viewFor(q, cntRels, Alice)

	alice, bob := OpenLocal()
	defer alice.Close()
	defer bob.Close()
	ctx := context.Background()

	bobDone := make(chan error, 1)
	go func() {
		numB, err := bob.RunShared(ctx, viewFor(q, rels, Bob))
		if err != nil {
			bobDone <- err
			return
		}
		denB, err := bob.RunShared(ctx, viewFor(q, cntRels, Bob))
		if err != nil {
			bobDone <- err
			return
		}
		_, err = bob.RevealRatio(ctx, numB, denB, 1)
		bobDone <- err
	}()
	num, err := alice.RunShared(ctx, sum)
	if err != nil {
		t.Fatalf("shared sum: %v", err)
	}
	den, err := alice.RunShared(ctx, cnt)
	if err != nil {
		t.Fatalf("shared count: %v", err)
	}
	avg, err := alice.RevealRatio(ctx, num, den, 1)
	if err != nil {
		t.Fatalf("reveal ratio: %v", err)
	}
	if err := <-bobDone; err != nil {
		t.Fatalf("bob composition: %v", err)
	}
	if avg.Len() == 0 {
		t.Fatal("empty AVG result")
	}
}

// TestSessionExplain checks that the options-based Explain agrees
// between the top-level function and the session method, and that both
// parties derive identical plans from public parameters.
func TestSessionExplain(t *testing.T) {
	q, rels := sessionExampleQuery(17, 12, 18)
	alice, bob := OpenLocal()
	defer alice.Close()
	defer bob.Close()

	// Plans carry unexported executor closures, so compare the public
	// surface: step sequence and estimates.
	publicView := func(p *Plan) string {
		s := fmt.Sprintf("est=%d offline=%d online=%d out=%d root=%s\n",
			p.EstBytes, p.EstOfflineBytes, p.EstOnlineBytes, p.EstOut, p.Root)
		for _, st := range p.Steps {
			s += fmt.Sprintf("%s/%s[%s] n=%d est=%d\n", st.Phase, st.Op, st.Node, st.N, st.EstBytes)
		}
		return s
	}

	pa, err := alice.Explain(viewFor(q, rels, Alice))
	if err != nil {
		t.Fatal(err)
	}
	pb, err := bob.Explain(viewFor(q, rels, Bob))
	if err != nil {
		t.Fatal(err)
	}
	if publicView(pa) != publicView(pb) {
		t.Fatalf("parties derived different plans from public parameters:\n%s\nvs\n%s", publicView(pa), publicView(pb))
	}
	free, err := Explain(viewFor(q, rels, Alice), WithRing(DefaultRing))
	if err != nil {
		t.Fatal(err)
	}
	if publicView(pa) != publicView(free) {
		t.Fatal("session Explain disagrees with package Explain")
	}
	if _, err := Explain(viewFor(q, rels, Alice), WithEstOut(64)); err != nil {
		t.Fatalf("explain with estOut: %v", err)
	}
}

// TestMissingRelationErrors checks the typed missing-relation error
// through both evaluators.
func TestMissingRelationErrors(t *testing.T) {
	q, rels := sessionExampleQuery(19, 8, 10)

	// Plaintext with a hole.
	partial := viewFor(q, rels, Alice) // Bob's records stripped
	_, err := Plaintext(partial, DefaultRing)
	if !errors.Is(err, ErrMissingRelation) {
		t.Fatalf("plaintext hole: got %v, want ErrMissingRelation", err)
	}
	var mre *MissingRelationError
	if !errors.As(err, &mre) || mre.Input != "records" {
		t.Fatalf("missing input name not recoverable from %v", err)
	}

	// Secure run where the owner forgot its own relation.
	alice, bob := OpenLocal()
	defer alice.Close()
	defer bob.Close()
	hole := viewFor(q, nil, Role(255))
	_, err = alice.Run(context.Background(), hole)
	if !errors.Is(err, ErrMissingRelation) {
		t.Fatalf("secure hole: got %v, want ErrMissingRelation", err)
	}
	if !errors.As(err, &mre) {
		t.Fatalf("secure hole not typed: %v", err)
	}
	_ = bob
}

// TestSessionStreamDeadline: a run whose peer never shows up fails
// with a stream-labeled deadline error; the session itself stays
// healthy and runs the next query fine.
func TestSessionStreamDeadline(t *testing.T) {
	q, rels := sessionExampleQuery(23, 8, 10)
	alice, bob := OpenLocal(WithStreamDeadline(50 * time.Millisecond))
	defer alice.Close()
	defer bob.Close()

	// Deliberately lonely run: bob issues nothing, so alice times out.
	// (The deadline fires before any data arrives from the peer.)
	start := time.Now()
	_, err := alice.Run(context.Background(), viewFor(q, rels, Alice))
	if err == nil {
		t.Fatal("lonely run succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("deadline error not context-compatible: %v", err)
	}
	var se *StreamError
	if !errors.As(err, &se) {
		t.Fatalf("deadline error not stream-labeled: %v", err)
	}
	if time.Since(start) > 5*time.Second {
		t.Fatalf("deadline took %v to fire", time.Since(start))
	}
	if alice.Err() != nil {
		t.Fatalf("stream deadline poisoned the session: %v", alice.Err())
	}

	// Bob opens his half of the expired stream and fails fast, keeping
	// the two endpoints' stream sequences aligned for the next query.
	if _, err := bob.Run(context.Background(), viewFor(q, rels, Bob)); err == nil {
		t.Fatal("bob's half of the expired stream succeeded")
	}
}

// TestSessionContextCancel: a canceled context aborts the run with a
// context-compatible, stream-labeled error.
func TestSessionContextCancel(t *testing.T) {
	q, rels := sessionExampleQuery(29, 8, 10)
	alice, bob := OpenLocal()
	defer alice.Close()
	defer bob.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	_, err := alice.Run(ctx, viewFor(q, rels, Alice))
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("canceled run: got %v", err)
	}
	_ = bob
}

// TestOpenRejectsBadRole guards the constructor.
func TestOpenRejectsBadRole(t *testing.T) {
	ca, cb := transport.Pair()
	defer ca.Close()
	defer cb.Close()
	if _, err := Open(Role(9), ca); err == nil {
		t.Fatal("invalid role accepted")
	}
}
