package secyan

import (
	"testing"
)

// exampleQuery reproduces the quickstart (paper Example 1.1) through the
// public API.
func exampleQuery() (policies, records, classes *Relation, build func(Role) *Query) {
	policies = NewRelation("person", "coinsurance")
	policies.Append([]uint64{1, 20}, 80)
	policies.Append([]uint64{2, 50}, 50)
	records = NewRelation("person", "disease")
	records.Append([]uint64{1, 100}, 1000)
	records.Append([]uint64{2, 100}, 2000)
	records.Append([]uint64{2, 101}, 500)
	classes = NewRelation("disease", "class")
	classes.Append([]uint64{100, 7}, 1)
	classes.Append([]uint64{101, 8}, 1)
	build = func(role Role) *Query {
		q := &Query{
			Inputs: []Input{
				{Name: "policies", Owner: Alice, Schema: policies.Schema, N: policies.Len()},
				{Name: "records", Owner: Bob, Schema: records.Schema, N: records.Len()},
				{Name: "classes", Owner: Alice, Schema: classes.Schema, N: classes.Len()},
			},
			Output: []Attr{"class"},
		}
		if role == Alice {
			q.Inputs[0].Rel = policies
			q.Inputs[2].Rel = classes
		} else {
			q.Inputs[1].Rel = records
		}
		return q
	}
	return
}

func TestPublicAPIEndToEnd(t *testing.T) {
	_, _, _, build := exampleQuery()
	alice, bob := LocalParties(DefaultRing)
	defer alice.Conn.Close()
	defer bob.Conn.Close()

	res, bobRes, err := Run2PC(alice, bob,
		func(p *Party) (*Relation, error) { return Run(p, build(Alice)) },
		func(p *Party) (*Relation, error) { return Run(p, build(Bob)) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if bobRes != nil {
		t.Fatal("Bob must receive nil")
	}
	got := map[uint64]uint64{}
	for i := range res.Tuples {
		got[res.Tuples[i][0]] = res.Annot[i]
	}
	// class 7: p1 1000*80 + p2 2000*50 = 180000; class 8: p2 500*50 = 25000.
	if got[7] != 180000 || got[8] != 25000 {
		t.Fatalf("results: %v", got)
	}
}

func TestPublicAPIPlaintextReference(t *testing.T) {
	policies, records, classes, _ := exampleQuery()
	q := &Query{
		Inputs: []Input{
			{Name: "policies", Owner: Alice, Schema: policies.Schema, N: policies.Len(), Rel: policies},
			{Name: "records", Owner: Bob, Schema: records.Schema, N: records.Len(), Rel: records},
			{Name: "classes", Owner: Alice, Schema: classes.Schema, N: classes.Len(), Rel: classes},
		},
		Output: []Attr{"class"},
	}
	res, err := Plaintext(q, DefaultRing)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("plaintext rows: %d", res.Len())
	}
	// Missing relation must be rejected.
	q.Inputs[1].Rel = nil
	if _, err := Plaintext(q, DefaultRing); err == nil {
		t.Fatal("plaintext with missing relation accepted")
	}
}

func TestCheckFreeConnexErrors(t *testing.T) {
	r1 := NewRelation("a", "b")
	r2 := NewRelation("b", "c")
	r3 := NewRelation("a", "c")
	q := &Query{Inputs: []Input{
		{Name: "r1", Owner: Alice, Schema: r1.Schema},
		{Name: "r2", Owner: Bob, Schema: r2.Schema},
		{Name: "r3", Owner: Alice, Schema: r3.Schema},
	}}
	if err := CheckFreeConnex(q, nil); err != ErrCyclic {
		t.Fatalf("triangle: got %v", err)
	}
	q2 := &Query{Inputs: []Input{
		{Name: "r1", Owner: Alice, Schema: r1.Schema},
		{Name: "r2", Owner: Bob, Schema: r2.Schema},
	}}
	if err := CheckFreeConnex(q2, []Attr{"a", "c"}); err != ErrNotFreeConnex {
		t.Fatalf("non-free-connex: got %v", err)
	}
	if err := CheckFreeConnex(q2, []Attr{"b"}); err != nil {
		t.Fatalf("valid query rejected: %v", err)
	}
}

func TestPublicAPIOverTCP(t *testing.T) {
	_, _, _, build := exampleQuery()
	const addr = "127.0.0.1:39613"
	type ares struct {
		p   *Party
		err error
	}
	ch := make(chan ares, 1)
	go func() {
		p, err := Listen(addr, Alice, DefaultRing)
		ch <- ares{p, err}
	}()
	var bob *Party
	var err error
	for i := 0; i < 200; i++ {
		bob, err = Dial(addr, Bob, DefaultRing)
		if err == nil {
			break
		}
	}
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	ar := <-ch
	if ar.err != nil {
		t.Fatalf("listen: %v", ar.err)
	}
	alice := ar.p
	defer alice.Conn.Close()
	defer bob.Conn.Close()

	res, _, err := Run2PC(alice, bob,
		func(p *Party) (*Relation, error) { return Run(p, build(Alice)) },
		func(p *Party) (*Relation, error) { return Run(p, build(Bob)) },
	)
	if err != nil {
		t.Fatal(err)
	}
	if res.Len() != 2 {
		t.Fatalf("TCP run rows: %d", res.Len())
	}
}
