# Developer and CI entry points. The heavy TPC-H secure-protocol tests
# are gated behind testing.Short(), so `make race` stays fast while
# `make test` runs the full tier-1 suite.

GO ?= go

.PHONY: all test short race race-sessions race-chunks race-backends race-obs race-kernels race-daemon bench bench-json vet fuzz

all: vet test

# Tier-1 verification: full build plus the complete test suite.
test:
	$(GO) build ./...
	$(GO) test ./...

# Fast suite: skips the full secure TPC-H query runs.
short:
	$(GO) test -short ./...

# Race detector over the parallel crypto kernels and everything else;
# -short keeps the slow TPC-H figures out of the (already ~10x slower)
# instrumented run.
race:
	$(GO) test -race -short ./...

# The session layer's concurrency and robustness suites under the race
# detector, repeated to shake out interleavings: stream multiplexing,
# heartbeats/deadlines, fault injection, and the concurrent-session
# transcript-equivalence tests.
race-sessions:
	$(GO) test -race -count=3 -timeout 30m -run 'Mux|Fault|Session' ./internal/transport ./internal/mpc ./internal/core .

# The chunk-invariance suites under the race detector, repeated: the
# streaming executor must produce byte-identical transcripts at every
# chunk size, including under concurrent workers and the offline/online
# overlap (see DESIGN.md §12).
race-chunks:
	$(GO) test -race -count=3 -timeout 30m -run 'Chunk' ./internal/relation ./internal/core ./internal/benchmark .

# The backend-equivalence suites under the race detector, repeated:
# every secure-join backend (psi-oep, bifrost, gc) must produce the
# results of the cost-based default, win its auctions when forced, and
# keep transcripts deterministic and oblivious (see DESIGN.md Â§13).
race-backends:
	$(GO) test -race -count=3 -timeout 30m -run 'Backend|PlanCosted' ./internal/core ./internal/jointree
	$(GO) test -race -count=3 -timeout 30m ./internal/bifrost ./internal/gcbaseline

# The observability suites under the race detector, repeated: labeled
# metric vecs, the structured event log, the flight recorder, the live
# step-status map, the debug server's graceful shutdown, and the
# fully-observed transcript-neutrality tests (see DESIGN.md §14).
race-obs:
	$(GO) test -race -count=3 -timeout 30m -run 'Obs|Event|Flight|Label|Status|Prom|Shutdown' ./internal/obs ./internal/core .

# The secyand daemon suites under the race detector, repeated: WFQ
# fairness/starvation, typed quota and overload shedding, the
# precompute farm's inventory and cooperative-warm paths, graceful
# drain — all over real TCP — plus the per-query RunOption API's
# precedence and wrapper-equivalence tests (see DESIGN.md §16).
race-daemon:
	$(GO) test -race -count=3 -timeout 30m ./internal/daemon
	$(GO) test -race -count=3 -timeout 30m -run 'QueryUnified|RunOption|QueryDeadline|ExplainMerges' .

# The crypto-kernel packages under the race detector, repeated: the
# fixed-key AES hash layer (batched MMO, the 8-wide AESENC kernel, the
# noescape scratch laundering), the IKNP extension that hashes matrix
# rows through it, PSI/cuckoo bin sweeps, and the packed bit-matrix
# plumbing underneath (see DESIGN.md §15).
race-kernels:
	$(GO) test -race -count=3 -timeout 30m ./internal/prf ./internal/bitutil ./internal/ot ./internal/cuckoo ./internal/psi

# Worker-count scaling benchmarks for the parallel kernels (IKNP
# extension, garbling/evaluation, bit-matrix transpose) plus the
# remaining micro-benchmarks. Paper-figure benchmarks live behind
# `go test -bench Figure .` and cmd/secyan-bench.
bench:
	$(GO) test -run '^$$' -bench 'Workers' -benchmem ./internal/...

# Regenerate the committed figure points (BENCH_pr4.json) with the
# plan-driven offline phase enabled, at laptop-friendly scales. The
# offline/online split per measured secure point lands in the JSON as
# offline_seconds/online_seconds/offline_bytes. BENCH_pr7.json adds the
# chosen-vs-forced backend deltas on Q3/Q10/Q18 (-backends): one
# measured secure point per backend, the "backend" field naming the
# forced variant (absent = cost-based selection). BENCH_pr8.json attaches
# each measured secure point's flight-recorder records ("flight"): the
# per-query plan digest, per-phase bytes/rounds/time, and auction
# outcomes behind the headline numbers. BENCH_pr9.json covers all five
# figures after the fixed-key AES kernel switch and adds the "kernels"
# field: per-point OT/garble/evaluate/PSI kernel throughputs.
bench-json:
	$(GO) run ./cmd/secyan-bench -precompute -scales 0.02,0.06,0.12 -securecap 0.12 -json BENCH_pr4.json
	$(GO) run ./cmd/secyan-bench -fig 0 -backends -scales 0.02,0.06 -securecap 0.06 -json BENCH_pr7.json
	$(GO) run ./cmd/secyan-bench -fig 2 -scales 0.02,0.06 -securecap 0.06 -json BENCH_pr8.json
	$(GO) run ./cmd/secyan-bench -fig 0 -scales 0.02,0.06 -securecap 0.06 -json BENCH_pr9.json

vet:
	$(GO) vet ./...

# Short fuzz bursts for the transpose involution, the TCP framing
# decoder and the SQL front end (seeded with the TPC-H query strings);
# extend -fuzztime locally for real fuzzing sessions.
fuzz:
	$(GO) test -run '^$$' -fuzz FuzzTranspose -fuzztime 10s ./internal/bitutil
	$(GO) test -run '^$$' -fuzz FuzzRecvFraming -fuzztime 10s ./internal/transport
	$(GO) test -run '^$$' -fuzz FuzzParse -fuzztime 10s ./internal/sqlfront
	$(GO) test -run '^$$' -fuzz FuzzChunkedScan -fuzztime 10s ./internal/relation
