// Package secyan is a from-scratch Go implementation of Secure
// Yannakakis (Wang & Yi, SIGMOD 2021): a secure two-party computation
// protocol that evaluates free-connex join-aggregate queries over the
// parties' private relations with cost Õ(IN + OUT) — linear in the data
// — instead of the Õ(N^k) a monolithic garbled circuit requires.
//
// The two parties, Alice and Bob, each own some of the query's
// relations. They run the protocol over a Conn; Alice (the designated
// receiver) learns the query results and nothing else, Bob learns
// nothing beyond public parameters. The implementation is semi-honest
// and entirely software-based: oblivious transfer, garbled circuits,
// cuckoo-hash PSI and oblivious switching networks are built from the
// standard library's crypto primitives (see DESIGN.md for the full
// inventory).
//
// The public entry point is the Session API: each party opens one
// Session over its end of a connection and issues context-first calls
// on it, any number of which may run concurrently — every execution
// gets its own logical stream over the shared transport:
//
//	alice, bob := secyan.OpenLocal()
//	defer alice.Close()
//	defer bob.Close()
//	q := &secyan.Query{
//		Inputs: []secyan.Input{
//			{Name: "visits", Owner: secyan.Bob, Schema: visits.Schema, N: visits.Len(), Rel: visits},
//			{Name: "plans", Owner: secyan.Alice, Schema: plans.Schema, N: plans.Len(), Rel: plans},
//		},
//		Output: []secyan.Attr{"class"},
//	}
//	// Both parties run their half concurrently; each party's query
//	// carries only its own relations (peer Inputs have Rel = nil).
//	go bob.Run(ctx, qBob)
//	res, err := alice.Run(ctx, qAlice)
//
// For two processes, open the session over a TCP conn (ListenSession /
// DialSession) and add WithHeartbeat for peer-liveness detection. The
// free functions (Run, RunShared, Precompute, NewParty, LocalParties)
// remain as thin wrappers over a caller-managed Party and connection.
package secyan

import (
	"context"
	"fmt"
	"io"

	"secyan/internal/core"
	"secyan/internal/jointree"
	"secyan/internal/mpc"
	"secyan/internal/obs"
	"secyan/internal/relation"
	"secyan/internal/share"
	"secyan/internal/transport"
	"secyan/internal/yannakakis"
)

// Re-exported building blocks. The underlying packages live in internal/;
// these aliases are the supported public surface.
type (
	// Attr names a relation attribute.
	Attr = relation.Attr
	// Schema is an ordered attribute list.
	Schema = relation.Schema
	// Relation is an annotated relation: tuples of uint64 values plus a
	// semiring annotation per tuple.
	Relation = relation.Relation
	// DummyGen hands out dummy attribute values for padding.
	DummyGen = relation.DummyGen
	// Ring is the annotation ring Z_{2^Bits}.
	Ring = share.Ring
	// Role identifies a party (Alice or Bob).
	Role = mpc.Role
	// Party is one endpoint of a two-party session.
	Party = mpc.Party
	// Conn is the message transport between the parties.
	Conn = transport.Conn
	// Input declares one base relation of a query.
	Input = core.Input
	// Query is a free-connex join-aggregate query over owned relations.
	Query = core.Query
	// SharedResult is an un-revealed query result (annotations still
	// secret-shared), used for query composition.
	SharedResult = core.SharedResult
	// Stats counts the traffic of a connection.
	Stats = transport.Stats
	// Trace is the per-step record of a protocol run (or of an offline
	// Precompute pass).
	Trace = core.Trace
	// BackendID names a secure-join backend; see WithBackend and the
	// Backend* constants.
	BackendID = core.BackendID
)

// Party roles.
const (
	// Alice is the designated receiver of query results.
	Alice = mpc.Alice
	// Bob is the other party.
	Bob = mpc.Bob
)

// Secure-join backends selectable with WithBackend. The zero BackendID
// keeps per-step cost-based selection.
const (
	// BackendPSIOEP is the paper's protocol stack: PSI payload sharing
	// composed with oblivious extended permutations.
	BackendPSIOEP = core.BackendPSIOEP
	// BackendBifrost aligns through a cuckoo-hashed slot table; it
	// applies when the child side of a semijoin is a plaintext relation
	// with unique join keys.
	BackendBifrost = core.BackendBifrost
	// BackendGC runs the step as one monolithic garbled circuit — the
	// baseline the paper compares against, practical at small sizes.
	BackendGC = core.BackendGC
)

// ParseBackend maps a command-line backend name to a BackendID. It
// accepts "auto" (or the empty string) for cost-based selection and the
// Backend* constant names.
func ParseBackend(s string) (BackendID, error) { return core.ParseBackend(s) }

// DefaultRing is the 32-bit annotation ring used in the paper's
// experiments (ℓ = 32, §8.2).
var DefaultRing = share.Default

// Errors exposed by the planner and evaluators.
var (
	// ErrCyclic reports a query without a join tree.
	ErrCyclic = jointree.ErrCyclic
	// ErrNotFreeConnex reports an acyclic query whose output attributes
	// violate the free-connex condition.
	ErrNotFreeConnex = jointree.ErrNotFreeConnex
	// ErrMissingRelation reports an evaluation over a query input whose
	// relation was not attached. errors.As with *MissingRelationError
	// recovers the input name.
	ErrMissingRelation = core.ErrMissingRelation
)

// MissingRelationError is the typed form of ErrMissingRelation; its
// Input field names the relation that was absent.
type MissingRelationError = core.MissingRelationError

// NewRelation returns an empty relation over the given attributes; panics
// on duplicate names (use relation construction early in setup).
func NewRelation(attrs ...Attr) *Relation {
	return relation.New(relation.MustSchema(attrs...))
}

// NewParty wraps a connection into a protocol endpoint. Pass a zero Ring
// for the default 32-bit annotations.
//
// Deprecated: prefer Open, which multiplexes any number of protocol
// executions over the connection with deadlines and heartbeats.
func NewParty(role Role, conn Conn, ring Ring) *Party {
	return mpc.NewParty(role, conn, ring)
}

// LocalParties returns two connected in-process parties, for tests,
// benchmarks and demos.
//
// Deprecated: prefer OpenLocal, the Session form of the same.
func LocalParties(ring Ring) (alice, bob *Party) {
	return mpc.Pair(ring)
}

// Listen accepts one TCP connection and wraps it for the given role.
//
// Deprecated: prefer ListenSession.
func Listen(addr string, role Role, ring Ring) (*Party, error) {
	c, err := transport.Listen(addr)
	if err != nil {
		return nil, err
	}
	return mpc.NewParty(role, c, ring), nil
}

// Dial connects to a listening peer and wraps the connection.
//
// Deprecated: prefer DialSession.
func Dial(addr string, role Role, ring Ring) (*Party, error) {
	c, err := transport.Dial(addr)
	if err != nil {
		return nil, err
	}
	return mpc.NewParty(role, c, ring), nil
}

// Run2PC drives both halves of an in-process protocol run concurrently.
func Run2PC[A, B any](alice, bob *Party, fa func(*Party) (A, error), fb func(*Party) (B, error)) (A, B, error) {
	return mpc.Run2PC(alice, bob, fa, fb)
}

// Run executes the secure Yannakakis protocol. Alice receives the query
// results; Bob receives nil. Both parties must describe the same query
// and attach only their own relations.
//
// Deprecated: prefer Session.Run, which is context-first and runs on
// its own stream of a multiplexed session.
func Run(p *Party, q *Query) (*Relation, error) {
	return core.Run(p, q)
}

// Precompute executes the offline phase of q's plan: base-OT setup,
// random-OT pool fills, and ahead-of-time garbling of every planned
// circuit. Both parties must call it concurrently — the offline phase
// has its own traffic — and the next Run on the same parties consumes
// the staged material transparently, leaving only derandomization and
// evaluation on the critical path. The offline phase is data-independent:
// q may be a bare query shape (schemas, owners, sizes) with no relations
// attached. Staged material is single-use; running a different query
// next is safe but falls back to the direct protocols.
//
// Deprecated: prefer Session.Precompute, which stages material on a
// background stream that the next Session.Run consumes.
func Precompute(ctx context.Context, p *Party, q *Query) (*Trace, error) {
	return core.Precompute(ctx, p, q)
}

// RunShared executes the protocol but keeps the result annotations in
// secret-shared form, enabling the compositions of paper §7 (avg,
// ratios, differences of sums).
//
// Deprecated: prefer Session.RunShared.
func RunShared(p *Party, q *Query) (*SharedResult, error) {
	return core.RunShared(p, q)
}

// RevealRatio reveals (num·scale)/den per result row to Alice — the
// composition used for AVG and market-share style aggregates.
//
// Deprecated: prefer Session.RevealRatio.
func RevealRatio(p *Party, num, den *SharedResult, scale uint64) (*Relation, error) {
	return core.RevealRatio(p, num, den, scale)
}

// CheckFreeConnex verifies that the query is answerable by the protocol,
// returning ErrCyclic, ErrNotFreeConnex, or nil.
func CheckFreeConnex(q *Query, output []Attr) error {
	_, err := q.Hypergraph().Plan(output)
	return err
}

// Plaintext evaluates the query in the clear with the (non-private)
// Yannakakis engine — the baseline of the paper's experiments and a
// reference for testing. Every Input must carry its relation.
func Plaintext(q *Query, ring Ring) (*Relation, error) {
	rels := make([]*Relation, len(q.Inputs))
	for i, in := range q.Inputs {
		if in.Rel == nil {
			return nil, fmt.Errorf("secyan: plaintext evaluation needs all relations: %w", &core.MissingRelationError{Input: in.Name})
		}
		rels[i] = in.Rel
	}
	tree, err := q.Hypergraph().Plan(q.Output)
	if err != nil {
		return nil, err
	}
	res, err := yannakakis.Run(tree, rels, q.Output, relation.RingSemiring{Bits: ring.OrDefault().Bits})
	if err != nil {
		return nil, err
	}
	return res.DropZeroAnnotated(), nil
}

// Plan is an execution plan with per-step communication estimates; see
// Explain.
type Plan = core.Plan

// Explain derives the execution plan and a communication estimate for a
// query from public parameters only (both parties compute identical
// plans — a restatement of obliviousness). Options: WithRing selects
// the annotation ring (default DefaultRing), WithEstOut the assumed
// output size for the join-phase steps of multi-survivor queries,
// WithChunkSize the streaming chunk size recorded in the plan, and
// WithBackend a forced secure-join backend.
func Explain(q *Query, opts ...Option) (*Plan, error) {
	cfg := buildConfig(opts)
	return core.ExplainOpts(q, cfg.ring.Bits,
		core.PlanOptions{EstOut: cfg.estOut, ChunkSize: cfg.chunk, Backend: cfg.backend})
}

// Query-scoped observability (see DESIGN.md §14): every execution on a
// Session carries a process-local session ID and query ID; the event
// log streams its lifecycle and the flight recorder retains one record
// per completed run. All of it is process-local bookkeeping — a fully
// observed run is byte-identical on the wire to an unobserved one.

// QueryRecord is one completed execution's flight-recorder record:
// plan digest, chosen-vs-rejected backends, per-phase bytes/rounds/wall
// time, chunk size, peer, and error/fault blame.
type QueryRecord = obs.QueryRecord

// Event is one structured lifecycle event retained by the event log.
type Event = obs.Event

// FlightRecords returns the flight recorder's retained completed-query
// records, newest first. Recording requires EnableObservability (or
// ServeDebug / SetFlightCapacity, which enable it).
func FlightRecords() []QueryRecord { return obs.Flight().Records() }

// SetFlightCapacity resizes the flight recorder to retain the last n
// completed-query records and enables observation.
func SetFlightCapacity(n int) {
	obs.Flight().SetCapacity(n)
	obs.Enable()
}

// LogEventsJSON mirrors the structured event log to w as JSON lines
// (session/query lifecycle, backend auctions, precompute pool hits,
// transport faults) and enables event collection. A nil w detaches the
// sink.
func LogEventsJSON(w io.Writer) { obs.Events().SetJSONSink(w) }

// RecentEvents returns up to max retained events, newest first
// (max <= 0 returns all).
func RecentEvents(max int) []Event { return obs.Events().Recent(max) }

// EnableObservability turns on metric collection, the flight recorder
// and the live step status for this process (the programmatic
// equivalent of starting the obs debug server).
func EnableObservability() { obs.Enable() }
