package secyan

import (
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"secyan/internal/transport"
)

// tcpConnPair returns the two ends of a loopback TCP connection wrapped
// as message transports.
func tcpConnPair(t *testing.T) (Conn, Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	acc := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		acc <- res{c, err}
	}()
	dialed, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-acc
	if a.err != nil {
		t.Fatal(a.err)
	}
	return transport.NewConn(a.c), transport.NewConn(dialed)
}

// TestSessionFaultMatrix injects every fault mode at several protocol
// positions, over both the in-memory pipe and a real TCP connection,
// and requires: (a) the faulted execution fails on both parties with
// an error labeled with exactly the affected stream, (b) the session
// itself stays healthy, and (c) a subsequent query on the same session
// runs to completion with the right answer.
func TestSessionFaultMatrix(t *testing.T) {
	q, rels := sessionExampleQuery(31, 8, 12)
	full := viewFor(q, rels, Alice)
	for i := range full.Inputs {
		full.Inputs[i].Rel = rels[i]
	}
	want, err := Plaintext(full, DefaultRing)
	if err != nil {
		t.Fatal(err)
	}
	wantSums := sumByClass(want)

	transports := []struct {
		name string
		mk   func(t *testing.T) (Conn, Conn)
	}{
		{"pipe", func(t *testing.T) (Conn, Conn) { return transport.Pair() }},
		{"tcp", tcpConnPair},
	}
	modes := []transport.FaultMode{
		transport.FaultDrop, transport.FaultDelay,
		transport.FaultPartial, transport.FaultClose,
	}
	// Message indices on Alice's faulted stream: the first send lands in
	// the input/setup phase, the sixth mid-protocol.
	atSends := []int{1, 6}

	for _, tr := range transports {
		for _, mode := range modes {
			for _, at := range atSends {
				t.Run(fmt.Sprintf("%s/%s/at%d", tr.name, mode, at), func(t *testing.T) {
					ca, cb := tr.mk(t)
					fault := transport.Fault{AtSend: at, Mode: mode, Delay: 600 * time.Millisecond}
					alice, err := Open(Alice, ca, WithStreamWrapper(func(id uint32, c Conn) Conn {
						if id == 0 {
							return transport.InjectFaults(c, fault)
						}
						return c
					}))
					if err != nil {
						t.Fatal(err)
					}
					bob, err := Open(Bob, cb)
					if err != nil {
						t.Fatal(err)
					}
					defer alice.Close()
					defer bob.Close()

					// Dropped messages surface only as a stall, so the faulted
					// run is bounded by a context deadline.
					ctx, cancel := context.WithTimeout(context.Background(), 300*time.Millisecond)
					defer cancel()
					bobErr := make(chan error, 1)
					go func() {
						_, err := bob.Run(ctx, viewFor(q, rels, Bob))
						bobErr <- err
					}()
					_, errA := alice.Run(ctx, viewFor(q, rels, Alice))
					errB := <-bobErr
					if errA == nil && errB == nil {
						t.Fatalf("fault %v at send %d went unnoticed by both parties", mode, at)
					}
					for who, err := range map[string]error{"alice": errA, "bob": errB} {
						if err == nil {
							continue
						}
						var se *StreamError
						if !errors.As(err, &se) {
							t.Fatalf("%s: fault error not stream-labeled: %v", who, err)
						}
						if se.Stream != 0 {
							t.Fatalf("%s: fault attributed to stream %d, want 0: %v", who, se.Stream, err)
						}
					}
					if mode == transport.FaultDrop && !errors.Is(errA, context.DeadlineExceeded) {
						t.Fatalf("dropped message should surface as a deadline: %v", errA)
					}
					if alice.Err() != nil || bob.Err() != nil {
						t.Fatalf("stream fault poisoned the session: %v / %v", alice.Err(), bob.Err())
					}

					// The next query on the same session is unaffected.
					ctx2, cancel2 := context.WithTimeout(context.Background(), 30*time.Second)
					defer cancel2()
					go func() {
						_, err := bob.Run(ctx2, viewFor(q, rels, Bob))
						bobErr <- err
					}()
					res, err := alice.Run(ctx2, viewFor(q, rels, Alice))
					if err != nil {
						t.Fatalf("query after fault: %v", err)
					}
					if err := <-bobErr; err != nil {
						t.Fatalf("query after fault (bob): %v", err)
					}
					if got := sumByClass(res); len(got) != len(wantSums) {
						t.Fatalf("post-fault result %v want %v", got, wantSums)
					}
				})
			}
		}
	}
}

// TestSessionFaultCloseMidProtocol kills the whole underlying
// connection mid-protocol and checks that every in-flight execution
// fails promptly with a labeled, ErrClosed-compatible error.
func TestSessionFaultCloseMidProtocol(t *testing.T) {
	q, rels := sessionExampleQuery(37, 8, 12)
	ca, cb := transport.Pair()
	// The 4th frame Alice's mux writes (data or control) tears down the
	// transport under the whole session.
	alice, err := Open(Alice, transport.InjectFaults(ca, transport.Fault{AtSend: 4, Mode: transport.FaultClose}))
	if err != nil {
		t.Fatal(err)
	}
	bob, err := Open(Bob, cb)
	if err != nil {
		t.Fatal(err)
	}
	defer alice.Close()
	defer bob.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	bobErr := make(chan error, 1)
	go func() {
		_, err := bob.Run(ctx, viewFor(q, rels, Bob))
		bobErr <- err
	}()
	_, errA := alice.Run(ctx, viewFor(q, rels, Alice))
	errB := <-bobErr
	if errA == nil || errB == nil {
		t.Fatalf("mid-protocol close unnoticed: alice %v bob %v", errA, errB)
	}
	if !errors.Is(errA, transport.ErrClosed) {
		t.Fatalf("alice error not ErrClosed-compatible: %v", errA)
	}
	if alice.Err() == nil {
		t.Fatal("session survived the death of its transport")
	}
}

// TestSeededFaultCampaign replays a deterministic seeded fault schedule
// against full protocol runs: every iteration either completes with
// the right answer or fails cleanly — no hangs, no panics, no
// cross-stream blame.
func TestSeededFaultCampaign(t *testing.T) {
	q, rels := sessionExampleQuery(41, 8, 12)
	for seed := uint64(1); seed <= 4; seed++ {
		faults := transport.SeededFaults(seed, 2, 40)
		ca, cb := transport.Pair()
		alice, err := Open(Alice, ca, WithStreamWrapper(func(id uint32, c Conn) Conn {
			if id == 0 {
				return transport.InjectFaults(c, faults...)
			}
			return c
		}))
		if err != nil {
			t.Fatal(err)
		}
		bob, err := Open(Bob, cb)
		if err != nil {
			t.Fatal(err)
		}

		ctx, cancel := context.WithTimeout(context.Background(), 2*time.Second)
		bobErr := make(chan error, 1)
		go func() {
			_, err := bob.Run(ctx, viewFor(q, rels, Bob))
			bobErr <- err
		}()
		_, errA := alice.Run(ctx, viewFor(q, rels, Alice))
		errB := <-bobErr
		cancel()
		for who, err := range map[string]error{"alice": errA, "bob": errB} {
			if err == nil {
				continue
			}
			var se *StreamError
			if errors.As(err, &se) && se.Stream != 0 {
				t.Fatalf("seed %d: %s blamed stream %d: %v", seed, who, se.Stream, err)
			}
		}
		alice.Close()
		bob.Close()
	}
}
