package secyan

import (
	"fmt"
	"net"
	"sort"
	"testing"

	"secyan/internal/parallel"
	"secyan/internal/transport"
)

// resultKey flattens a result relation into a canonical sorted form for
// comparison across runs.
func resultKey(r *Relation) []string {
	out := make([]string, r.Len())
	for i := range r.Tuples {
		out[i] = fmt.Sprintf("%v=%d", r.Tuples[i], r.Annot[i])
	}
	sort.Strings(out)
	return out
}

// TestQueryTranscriptEquivalenceAcrossWorkers runs a full Yannakakis
// query (PSI, oblivious semijoins and aggregation, garbled circuits over
// IKNP OT) at worker counts 1 and 4 and requires identical results and
// identical transport.Stats — bytes, messages, and rounds — on both
// endpoints. This is the end-to-end transcript-determinism guarantee:
// parallel kernels must not change a single byte of communication.
func TestQueryTranscriptEquivalenceAcrossWorkers(t *testing.T) {
	_, _, _, build := exampleQuery()

	type outcome struct {
		result         []string
		aStats, bStats Stats
	}
	runAt := func(workers int) outcome {
		prev := parallel.SetWorkers(workers)
		defer parallel.SetWorkers(prev)
		alice, bob := LocalParties(DefaultRing)
		defer alice.Conn.Close()
		defer bob.Conn.Close()
		res, _, err := Run2PC(alice, bob,
			func(p *Party) (*Relation, error) { return Run(p, build(Alice)) },
			func(p *Party) (*Relation, error) { return Run(p, build(Bob)) },
		)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return outcome{resultKey(res), alice.Conn.Stats(), bob.Conn.Stats()}
	}

	ref := runAt(1)
	for _, workers := range []int{4} {
		got := runAt(workers)
		if len(got.result) != len(ref.result) {
			t.Fatalf("workers=%d: %d result tuples, serial %d", workers, len(got.result), len(ref.result))
		}
		for i := range ref.result {
			if got.result[i] != ref.result[i] {
				t.Fatalf("workers=%d: result row %q, serial %q", workers, got.result[i], ref.result[i])
			}
		}
		if got.aStats != ref.aStats {
			t.Fatalf("workers=%d: alice stats %+v, serial %+v", workers, got.aStats, ref.aStats)
		}
		if got.bStats != ref.bStats {
			t.Fatalf("workers=%d: bob stats %+v, serial %+v", workers, got.bStats, ref.bStats)
		}
	}
}

// tcpParties joins Alice and Bob over a real loopback TCP socket instead
// of the in-memory pipe.
func tcpParties(t *testing.T) (alice, bob *Party) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatalf("listen: %v", err)
	}
	defer ln.Close()
	acc := make(chan net.Conn, 1)
	accErr := make(chan error, 1)
	go func() {
		c, err := ln.Accept()
		accErr <- err
		acc <- c
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	if err := <-accErr; err != nil {
		t.Fatalf("accept: %v", err)
	}
	server := <-acc
	alice = NewParty(Alice, transport.NewConn(server), DefaultRing)
	bob = NewParty(Bob, transport.NewConn(client), DefaultRing)
	t.Cleanup(func() {
		alice.Conn.Close()
		bob.Conn.Close()
	})
	return alice, bob
}

// TestQueryOverTCP runs the example query end to end over the TCP
// transport, checking that protocol results and payload accounting match
// the in-memory transport exactly (framing overhead is excluded from
// Stats by design).
func TestQueryOverTCP(t *testing.T) {
	_, _, _, build := exampleQuery()

	memAlice, memBob := LocalParties(DefaultRing)
	defer memAlice.Conn.Close()
	defer memBob.Conn.Close()
	memRes, _, err := Run2PC(memAlice, memBob,
		func(p *Party) (*Relation, error) { return Run(p, build(Alice)) },
		func(p *Party) (*Relation, error) { return Run(p, build(Bob)) },
	)
	if err != nil {
		t.Fatalf("in-memory run: %v", err)
	}

	alice, bob := tcpParties(t)
	res, bobRes, err := Run2PC(alice, bob,
		func(p *Party) (*Relation, error) { return Run(p, build(Alice)) },
		func(p *Party) (*Relation, error) { return Run(p, build(Bob)) },
	)
	if err != nil {
		t.Fatalf("tcp run: %v", err)
	}
	if bobRes != nil {
		t.Fatal("Bob must receive nil")
	}

	want := resultKey(memRes)
	got := resultKey(res)
	if len(got) != len(want) {
		t.Fatalf("tcp run returned %d tuples, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tcp result row %q, want %q", got[i], want[i])
		}
	}
	if a, m := alice.Conn.Stats(), memAlice.Conn.Stats(); a != m {
		t.Fatalf("tcp alice stats %+v, in-memory %+v", a, m)
	}
	if b, m := bob.Conn.Stats(), memBob.Conn.Stats(); b != m {
		t.Fatalf("tcp bob stats %+v, in-memory %+v", b, m)
	}
}
